#include "har/trainer.h"

#include <algorithm>
#include <filesystem>

#include "common/artifact_store.h"
#include "common/hash.h"
#include "common/logging.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace mmhar::har {
namespace {

constexpr std::uint32_t kCheckpointMagic = 0x504B4354;  // "TCKP"
constexpr std::uint32_t kCheckpointVersion = 1;

std::vector<std::size_t> range_indices(std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  return idx;
}

/// Everything that must agree between the run that wrote a checkpoint and
/// the run trying to resume it. A mismatch means "different training" —
/// the checkpoint is ignored, never partially applied.
std::uint64_t checkpoint_fingerprint(HarModel& model, const Dataset& train,
                                     const TrainConfig& config) {
  Hasher h;
  h.mix(config.epochs)
      .mix(config.batch_size)
      .mix(static_cast<double>(config.learning_rate))
      .mix(static_cast<double>(config.weight_decay))
      .mix(static_cast<double>(config.grad_clip))
      .mix(config.seed)
      .mix(config.validation_fraction)
      .mix(config.checkpoint_salt)
      .mix(train.size())
      .mix(model.parameter_count());
  return h.value();
}

struct CheckpointState {
  std::size_t next_epoch = 0;
  std::vector<std::size_t> indices;
  std::vector<std::size_t> val_indices;
};

void write_u64_index_vec(BinaryWriter& w, const std::vector<std::size_t>& v) {
  std::vector<std::uint64_t> wide(v.begin(), v.end());
  w.write_u64_vec(wide);
}

std::vector<std::size_t> read_u64_index_vec(BinaryReader& r) {
  const auto wide = r.read_u64_vec();
  return {wide.begin(), wide.end()};
}

void save_checkpoint(const TrainConfig& config, std::uint64_t fingerprint,
                     const CheckpointState& state, HarModel& model,
                     const nn::Adam& optimizer, const Rng& rng,
                     const TrainHistory& history) {
  save_artifact(config.checkpoint_path, kCheckpointMagic, kCheckpointVersion,
                [&](BinaryWriter& w) {
                  w.write_u64(fingerprint);
                  w.write_u64(state.next_epoch);
                  write_u64_index_vec(w, state.indices);
                  write_u64_index_vec(w, state.val_indices);
                  rng.save(w);
                  optimizer.save(w);
                  const auto params = model.parameters();
                  w.write_u64(params.size());
                  for (const Tensor* p : params) p->save(w);
                  w.write_u64(history.epochs.size());
                  for (const EpochStats& e : history.epochs) {
                    w.write_f32(e.loss);
                    w.write_f32(e.accuracy);
                    w.write_f32(e.validation_accuracy);
                  }
                });
}

/// Attempt to resume. Returns true (with every out-param overwritten)
/// only for an intact checkpoint with a matching fingerprint; corrupt
/// files are quarantined by the store and stale ones ignored, so a bad
/// checkpoint can only cost a from-scratch retrain, never wrong numbers.
bool try_resume_checkpoint(const TrainConfig& config,
                           std::uint64_t fingerprint, CheckpointState& state,
                           HarModel& model, nn::Adam& optimizer, Rng& rng,
                           TrainHistory& history) {
  bool fingerprint_ok = false;
  CheckpointState loaded;
  TrainHistory loaded_history;
  std::vector<Tensor> params;
  Rng loaded_rng(0);
  nn::Adam loaded_optimizer(config.learning_rate, 0.9F, 0.999F, 1e-8F,
                            config.weight_decay);

  const LoadResult res = load_artifact(
      config.checkpoint_path, kCheckpointMagic, kCheckpointVersion,
      [&](BinaryReader& r) {
        if (r.read_u64() != fingerprint) return;  // stale: leave flag false
        loaded.next_epoch = r.read_u64();
        loaded.indices = read_u64_index_vec(r);
        loaded.val_indices = read_u64_index_vec(r);
        loaded_rng.load(r);
        loaded_optimizer.load(r);
        const auto n = r.read_u64();
        for (std::uint64_t i = 0; i < n; ++i)
          params.push_back(Tensor::load(r));
        const auto eps = r.read_u64();
        for (std::uint64_t i = 0; i < eps; ++i) {
          EpochStats e;
          e.loss = r.read_f32();
          e.accuracy = r.read_f32();
          e.validation_accuracy = r.read_f32();
          loaded_history.epochs.push_back(e);
        }
        fingerprint_ok = true;
      });

  if (!res.ok()) return false;
  if (!fingerprint_ok) {
    MMHAR_LOG(Warn) << "checkpoint " << config.checkpoint_path
                    << " belongs to a different training config; ignoring";
    return false;
  }
  const auto model_params = model.parameters();
  if (params.size() != model_params.size()) return false;
  for (std::size_t i = 0; i < params.size(); ++i)
    *model_params[i] = std::move(params[i]);
  state = std::move(loaded);
  rng = loaded_rng;
  optimizer = std::move(loaded_optimizer);
  history = std::move(loaded_history);
  MMHAR_LOG(Info) << "resuming training from " << config.checkpoint_path
                  << " at epoch " << state.next_epoch + 1 << "/"
                  << config.epochs;
  return true;
}

}  // namespace

TrainHistory train_model(HarModel& model, const Dataset& train,
                         const TrainConfig& config) {
  MMHAR_REQUIRE(!train.empty(), "cannot train on an empty dataset");
  MMHAR_REQUIRE(config.batch_size > 0, "batch size must be positive");
  const bool checkpointing = !config.checkpoint_path.empty();
  MMHAR_REQUIRE(!checkpointing || config.checkpoint_every > 0,
                "checkpoint_every must be >= 1 when checkpointing");

  Rng rng(config.seed);
  CheckpointState state;
  state.indices = range_indices(train.size());
  rng.shuffle(state.indices);

  // Optional validation split (stratification not needed: shuffled).
  if (config.validation_fraction > 0.0) {
    const auto n_val = static_cast<std::size_t>(
        config.validation_fraction *
        static_cast<double>(state.indices.size()));
    state.val_indices.assign(
        state.indices.end() - static_cast<std::ptrdiff_t>(n_val),
        state.indices.end());
    state.indices.resize(state.indices.size() - n_val);
  }
  MMHAR_REQUIRE(!state.indices.empty(),
                "validation split consumed all samples");

  nn::Adam optimizer(config.learning_rate, 0.9F, 0.999F, 1e-8F,
                     config.weight_decay);
  const auto params = model.parameters();
  const auto grads = model.gradients();

  TrainHistory history;
  const std::uint64_t fingerprint =
      checkpoint_fingerprint(model, train, config);
  if (checkpointing)
    try_resume_checkpoint(config, fingerprint, state, model, optimizer, rng,
                          history);

  auto& indices = state.indices;
  const auto& val_indices = state.val_indices;
  const std::size_t start_epoch = state.next_epoch;
  std::vector<std::size_t> batch_idx;  // hoisted per-batch index scratch
  for (std::size_t epoch = start_epoch; epoch < config.epochs; ++epoch) {
    rng.shuffle(indices);
    double loss_sum = 0.0;
    double acc_sum = 0.0;
    std::size_t batches = 0;

    for (std::size_t start = 0; start < indices.size();
         start += config.batch_size) {
      const std::size_t end =
          std::min(indices.size(), start + config.batch_size);
      batch_idx.assign(indices.begin() + start, indices.begin() + end);
      const Tensor batch = train.batch_of(batch_idx);
      const auto labels = train.labels_of(batch_idx);

      model.zero_gradients();
      const Tensor logits = model.forward(batch, /*training=*/true);
      const auto loss = nn::softmax_cross_entropy(logits, labels);
      model.backward(loss.grad_logits);
      nn::clip_gradient_norm(grads, config.grad_clip);
      optimizer.step(params, grads);

      loss_sum += loss.loss;
      acc_sum += nn::accuracy(logits, labels);
      ++batches;
    }

    EpochStats stats;
    stats.loss = static_cast<float>(
        loss_sum / static_cast<double>(std::max<std::size_t>(1, batches)));
    stats.accuracy = static_cast<float>(
        acc_sum / static_cast<double>(std::max<std::size_t>(1, batches)));
    if (!val_indices.empty()) {
      const Tensor vb = train.batch_of(val_indices);
      const auto vl = train.labels_of(val_indices);
      const Tensor vlogits = model.forward(vb, /*training=*/false);
      stats.validation_accuracy = nn::accuracy(vlogits, vl);
    }
    history.epochs.push_back(stats);
    if (config.verbose) {
      MMHAR_LOG(Info) << "epoch " << epoch + 1 << "/" << config.epochs
                      << " loss=" << stats.loss << " acc=" << stats.accuracy
                      << " val=" << stats.validation_accuracy;
    }

    const bool last_epoch = epoch + 1 == config.epochs;
    const bool budget_exhausted =
        config.max_epochs_this_run > 0 && !last_epoch &&
        epoch + 1 - start_epoch >= config.max_epochs_this_run;
    if (checkpointing && !last_epoch &&
        ((epoch + 1) % config.checkpoint_every == 0 || budget_exhausted)) {
      state.next_epoch = epoch + 1;
      save_checkpoint(config, fingerprint, state, model, optimizer, rng,
                      history);
    }
    if (budget_exhausted) return history;
  }

  if (checkpointing) {
    // Training completed; a leftover checkpoint would only be resumed by
    // a bit-identical rerun, but tidy up anyway.
    std::error_code ec;
    std::filesystem::remove(config.checkpoint_path, ec);
  }
  return history;
}

std::vector<std::size_t> predict_all(HarModel& model,
                                     const Dataset& dataset) {
  std::vector<std::size_t> preds;
  preds.reserve(dataset.size());
  constexpr std::size_t kEvalBatch = 32;
  std::vector<std::size_t> idx;  // hoisted per-batch index scratch
  for (std::size_t start = 0; start < dataset.size(); start += kEvalBatch) {
    const std::size_t end = std::min(dataset.size(), start + kEvalBatch);
    idx.clear();
    for (std::size_t i = start; i < end; ++i) idx.push_back(i);
    const Tensor logits =
        model.forward(dataset.batch_of(idx), /*training=*/false);
    const std::size_t classes = logits.dim(1);
    MMHAR_CHECK(logits.size() == idx.size() * classes);
    for (std::size_t b = 0; b < idx.size(); ++b) {
      const float* row = logits.data() + b * classes;
      std::size_t best = 0;
      for (std::size_t c = 1; c < classes; ++c)
        if (row[c] > row[best]) best = c;
      preds.push_back(best);
    }
  }
  return preds;
}

float evaluate_accuracy(HarModel& model, const Dataset& dataset) {
  if (dataset.empty()) return 0.0F;
  const auto preds = predict_all(model, dataset);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < dataset.size(); ++i)
    if (preds[i] == dataset.sample(i).label) ++correct;
  return static_cast<float>(correct) / static_cast<float>(dataset.size());
}

ConfusionMatrix evaluate_confusion(HarModel& model, const Dataset& dataset) {
  ConfusionMatrix cm(dataset.num_classes());
  const auto preds = predict_all(model, dataset);
  for (std::size_t i = 0; i < dataset.size(); ++i)
    cm.add(dataset.sample(i).label, preds[i]);
  return cm;
}

}  // namespace mmhar::har
