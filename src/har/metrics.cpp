#include "har/metrics.h"

#include <iomanip>
#include <sstream>

#include "common/check.h"

namespace mmhar::har {

ConfusionMatrix::ConfusionMatrix(std::size_t num_classes)
    : num_classes_(num_classes), counts_(num_classes * num_classes, 0) {
  MMHAR_REQUIRE(num_classes > 0, "need at least one class");
}

void ConfusionMatrix::add(std::size_t true_label,
                          std::size_t predicted_label) {
  MMHAR_REQUIRE(true_label < num_classes_ && predicted_label < num_classes_,
                "label out of range");
  ++counts_[true_label * num_classes_ + predicted_label];
  ++total_;
}

std::size_t ConfusionMatrix::count(std::size_t true_label,
                                   std::size_t predicted) const {
  MMHAR_REQUIRE(true_label < num_classes_ && predicted < num_classes_,
                "label out of range");
  return counts_[true_label * num_classes_ + predicted];
}

double ConfusionMatrix::accuracy() const {
  if (total_ == 0) return 0.0;
  std::size_t diag = 0;
  for (std::size_t c = 0; c < num_classes_; ++c)
    diag += counts_[c * num_classes_ + c];
  return static_cast<double>(diag) / static_cast<double>(total_);
}

std::vector<double> ConfusionMatrix::per_class_recall() const {
  std::vector<double> out(num_classes_, 0.0);
  for (std::size_t t = 0; t < num_classes_; ++t) {
    std::size_t row = 0;
    for (std::size_t p = 0; p < num_classes_; ++p)
      row += counts_[t * num_classes_ + p];
    if (row > 0)
      out[t] = static_cast<double>(counts_[t * num_classes_ + t]) /
               static_cast<double>(row);
  }
  return out;
}

std::vector<double> ConfusionMatrix::per_class_precision() const {
  std::vector<double> out(num_classes_, 0.0);
  for (std::size_t p = 0; p < num_classes_; ++p) {
    std::size_t col = 0;
    for (std::size_t t = 0; t < num_classes_; ++t)
      col += counts_[t * num_classes_ + p];
    if (col > 0)
      out[p] = static_cast<double>(counts_[p * num_classes_ + p]) /
               static_cast<double>(col);
  }
  return out;
}

std::string ConfusionMatrix::to_string(
    const std::vector<std::string>& class_names) const {
  const auto name_of = [&](std::size_t i) {
    if (i < class_names.size()) return class_names[i];
    return "class" + std::to_string(i);
  };
  std::size_t width = 6;
  for (std::size_t i = 0; i < num_classes_; ++i)
    width = std::max(width, name_of(i).size() + 1);

  std::ostringstream os;
  os << std::setw(static_cast<int>(width)) << "T\\P";
  for (std::size_t p = 0; p < num_classes_; ++p)
    os << std::setw(static_cast<int>(width)) << name_of(p);
  os << "\n";
  for (std::size_t t = 0; t < num_classes_; ++t) {
    os << std::setw(static_cast<int>(width)) << name_of(t);
    for (std::size_t p = 0; p < num_classes_; ++p)
      os << std::setw(static_cast<int>(width))
         << counts_[t * num_classes_ + p];
    os << "\n";
  }
  os << "accuracy: " << std::fixed << std::setprecision(2)
     << 100.0 * accuracy() << "% over " << total_ << " samples";
  return os.str();
}

}  // namespace mmhar::har
