// Mini-batch training and evaluation for the HAR model.
#pragma once

#include "common/thread_annotations.h"
#include "har/dataset.h"
#include "har/metrics.h"
#include "har/model.h"

namespace mmhar::har {

struct TrainConfig {
  std::size_t epochs = 18;
  std::size_t batch_size = 16;
  float learning_rate = 1.5e-3F;
  float weight_decay = 1e-4F;
  float grad_clip = 5.0F;
  std::uint64_t seed = 1234;      ///< shuffling seed
  double validation_fraction = 0.0;  ///< held out from training if > 0
  bool verbose = false;

  // ---- Crash tolerance (see README "Crash recovery & caching") ----
  /// When non-empty, an atomic checkpoint (weights + Adam moments + RNG
  /// state + shuffle order + epoch index + history) is written to this
  /// path every `checkpoint_every` epochs, and a compatible checkpoint
  /// found at start is resumed *bit-identically* — the resumed run's
  /// final weights equal an uninterrupted run's exactly. The file is
  /// removed once training completes.
  std::string checkpoint_path;
  std::size_t checkpoint_every = 1;  ///< epochs between checkpoints
  /// Extra entropy for the checkpoint fingerprint; give distinct salts to
  /// trainings that share every hyperparameter but different data so
  /// their checkpoints can never resume each other.
  std::uint64_t checkpoint_salt = 0;
  /// Train at most this many epochs in this call (0 = to `epochs`), then
  /// checkpoint and return. A later call resumes where this one stopped;
  /// used for time-sliced training and the kill/resume tests.
  std::size_t max_epochs_this_run = 0;
};

struct EpochStats {
  float loss = 0.0F;
  float accuracy = 0.0F;
  float validation_accuracy = 0.0F;  ///< 0 when no validation split
};

struct TrainHistory {
  std::vector<EpochStats> epochs;
  float final_validation_accuracy() const {
    return epochs.empty() ? 0.0F : epochs.back().validation_accuracy;
  }
};

/// Train in place with Adam + gradient clipping. Deterministic given the
/// config seed and the model's initialization seed.
TrainHistory train_model(HarModel& model, const Dataset& train,
                         const TrainConfig& config) MMHAR_DETERMINISTIC;

/// Top-1 accuracy over a dataset (batched inference).
float evaluate_accuracy(HarModel& model, const Dataset& dataset);

/// Full confusion matrix over a dataset.
ConfusionMatrix evaluate_confusion(HarModel& model, const Dataset& dataset);

/// Predictions for every sample in order.
std::vector<std::size_t> predict_all(HarModel& model, const Dataset& dataset);

}  // namespace mmhar::har
