#include "har/dataset.h"

#include "common/env.h"
#include "common/logging.h"

namespace mmhar::har {

const Sample& Dataset::sample(std::size_t i) const {
  MMHAR_CHECK(i < samples_.size());
  return samples_[i];
}

Sample& Dataset::sample(std::size_t i) {
  MMHAR_CHECK(i < samples_.size());
  return samples_[i];
}

void Dataset::add(Sample sample) {
  MMHAR_REQUIRE(sample.label < num_classes_,
                "label " << sample.label << " out of range");
  if (!samples_.empty()) {
    MMHAR_REQUIRE(sample.heatmaps.same_shape(samples_.front().heatmaps),
                  "all samples must share a heatmap shape");
  }
  samples_.push_back(std::move(sample));
}

std::vector<std::size_t> Dataset::indices_of_label(std::size_t label) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < samples_.size(); ++i)
    if (samples_[i].label == label) out.push_back(i);
  return out;
}

Tensor Dataset::batch_of(const std::vector<std::size_t>& indices) const {
  MMHAR_REQUIRE(!indices.empty() && !samples_.empty(), "empty batch");
  const auto& shape = samples_.front().heatmaps.shape();
  Tensor batch({indices.size(), shape[0], shape[1], shape[2]});
  const std::size_t stride = shape[0] * shape[1] * shape[2];
  for (std::size_t b = 0; b < indices.size(); ++b) {
    const Tensor& h = sample(indices[b]).heatmaps;
    std::copy(h.data(), h.data() + stride, batch.data() + b * stride);
  }
  return batch;
}

std::vector<std::size_t> Dataset::labels_of(
    const std::vector<std::size_t>& indices) const {
  std::vector<std::size_t> labels(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i)
    labels[i] = sample(indices[i]).label;
  return labels;
}

namespace {

constexpr std::uint32_t kDatasetMagic = 0x53445348;  // "HSDS"
constexpr std::uint32_t kDatasetVersion = 1;

}  // namespace

void Dataset::save(const std::string& path) const {
  save_artifact(path, kDatasetMagic, kDatasetVersion, [&](BinaryWriter& w) {
    w.write_u64(num_classes_);
    w.write_u64(samples_.size());
    for (const auto& s : samples_) {
      w.write_u32(static_cast<std::uint32_t>(s.spec.activity));
      w.write_i64(s.spec.participant);
      w.write_f64(s.spec.distance_m);
      w.write_f64(s.spec.angle_deg);
      w.write_u32(s.spec.repetition);
      w.write_u64(s.spec.seed);
      w.write_u64(s.label);
      s.heatmaps.save(w);
    }
  });
}

LoadResult Dataset::try_load(const std::string& path, Dataset& out) {
  Dataset ds;
  const LoadResult result =
      load_artifact(path, kDatasetMagic, kDatasetVersion, [&](BinaryReader& r) {
        ds.num_classes_ = r.read_u64();
        const auto count = r.read_u64();
        for (std::uint64_t i = 0; i < count; ++i) {
          Sample s;
          s.spec.activity = static_cast<mesh::Activity>(r.read_u32());
          s.spec.participant = static_cast<int>(r.read_i64());
          s.spec.distance_m = r.read_f64();
          s.spec.angle_deg = r.read_f64();
          s.spec.repetition = r.read_u32();
          s.spec.seed = r.read_u64();
          s.label = r.read_u64();
          s.heatmaps = Tensor::load(r);
          ds.samples_.push_back(std::move(s));
        }
      });
  if (result.ok()) out = std::move(ds);
  return result;
}

Dataset Dataset::load(const std::string& path) {
  Dataset ds;
  const LoadResult result = try_load(path, ds);
  if (!result.ok())
    throw IoError("Dataset::load: " + path + ": " +
                  load_status_name(result.status) +
                  (result.detail.empty() ? "" : " (" + result.detail + ")"));
  return ds;
}

void DatasetConfig::hash_into(Hasher& h) const {
  for (const int p : participants) h.mix(p);
  for (const double d : distances_m) h.mix(d);
  for (const double a : angles_deg) h.mix(a);
  for (const std::size_t act : activities) h.mix(act);
  h.mix(repetitions)
      .mix(static_cast<std::uint64_t>(repetition_offset))
      .mix(seed);
}

Dataset build_dataset(const SampleGenerator& generator,
                      const DatasetConfig& config) {
  Dataset ds;
  ds.set_num_classes(mesh::kNumActivities);
  std::size_t done = 0;
  const std::size_t total = config.total_samples();
  for (const std::size_t a : config.activities) {
    for (const int participant : config.participants) {
      for (const double distance : config.distances_m) {
        for (const double angle : config.angles_deg) {
          for (std::size_t rep = 0; rep < config.repetitions; ++rep) {
            Sample s;
            s.spec.activity = mesh::activity_from_index(a);
            s.spec.participant = participant;
            s.spec.distance_m = distance;
            s.spec.angle_deg = angle;
            s.spec.repetition =
                config.repetition_offset + static_cast<std::uint32_t>(rep);
            s.spec.seed = config.seed;
            s.label = a;
            s.heatmaps = generator.generate(s.spec);
            ds.add(std::move(s));
            if (++done % 50 == 0) {
              MMHAR_LOG(Info)
                  << "dataset generation " << done << "/" << total;
            }
          }
        }
      }
    }
  }
  return ds;
}

Dataset load_or_build_dataset(const SampleGenerator& generator,
                              const DatasetConfig& config,
                              std::string cache_dir) {
  if (cache_dir.empty())
    cache_dir = env_string("MMHAR_CACHE_DIR", ".mmhar_cache");
  ensure_directory(cache_dir);

  Hasher h;
  generator.config().hash_into(h);
  config.hash_into(h);
  const std::string path = cache_dir + "/dataset_" + h.hex() + ".ds";

  Dataset cached;
  const LoadResult res = Dataset::try_load(path, cached);
  if (res.ok()) {
    MMHAR_LOG(Debug) << "dataset cache hit: " << path;
    return cached;
  }
  if (res.status != LoadStatus::Missing) {
    MMHAR_LOG(Warn) << "dataset cache " << path << " unusable ("
                    << load_status_name(res.status)
                    << "), regenerating from scratch";
  }
  MMHAR_LOG(Info) << "dataset cache miss, generating "
                  << config.total_samples() << " samples -> " << path;
  Dataset ds = build_dataset(generator, config);
  try {
    ds.save(path);
  } catch (const IoError& e) {
    // A failed cache write (full disk, injected rename fault) must not
    // take down the run that just paid for the generation.
    MMHAR_LOG(Warn) << "dataset cache write failed (" << e.what()
                    << "); continuing uncached";
  }
  return ds;
}

}  // namespace mmhar::har
