#include "har/model.h"

#include <cmath>

#include "common/serialize.h"
#include "nn/activation.h"

namespace mmhar::har {

HarModel::HarModel(const HarModelConfig& config) : config_(config) {
  MMHAR_REQUIRE(config.height % 8 == 0 && config.width % 8 == 0,
                "heatmap dims must be divisible by 8 (two stride-2 convs "
                "plus one 2x2 pool)");
  Rng rng(config.seed);

  // Frame CNN: 32x32 -> conv(s2) 16x16 -> conv(s2) 8x8 -> pool 4x4.
  cnn_.emplace<nn::Conv2D>(1, config.conv1_channels, 5, 2, 2, rng);
  cnn_.emplace<nn::ReLU>();
  cnn_.emplace<nn::Conv2D>(config.conv1_channels, config.conv2_channels, 3, 2,
                           1, rng);
  cnn_.emplace<nn::ReLU>();
  cnn_.emplace<nn::MaxPool2D>(2);
  cnn_.emplace<nn::Flatten>();
  const std::size_t spatial =
      (config.height / 8) * (config.width / 8) * config.conv2_channels;
  cnn_.emplace<nn::Dense>(spatial, config.feature_dim, rng);
  cnn_.emplace<nn::ReLU>();

  lstm_ = std::make_unique<nn::LSTM>(config.feature_dim, config.lstm_hidden,
                                     rng, /*return_sequence=*/false);
  head_ = std::make_unique<nn::Dense>(config.lstm_hidden, config.num_classes,
                                      rng);
}

Tensor HarModel::forward(const Tensor& batch, bool training) {
  MMHAR_REQUIRE(batch.rank() == 4 && batch.dim(1) == config_.frames &&
                    batch.dim(2) == config_.height &&
                    batch.dim(3) == config_.width,
                "expected [B, " << config_.frames << ", " << config_.height
                                << ", " << config_.width << "], got "
                                << batch.shape_string());
  last_batch_ = batch.dim(0);
  const std::size_t bt = last_batch_ * config_.frames;

  // Per-frame CNN over the merged batch*time axis.
  const Tensor frames =
      batch.reshaped({bt, 1, config_.height, config_.width});
  const Tensor features = cnn_.forward(frames, training);
  const Tensor series =
      features.reshaped({last_batch_, config_.frames, config_.feature_dim});
  const Tensor hidden = lstm_->forward(series, training);
  return head_->forward(hidden, training);
}

void HarModel::backward(const Tensor& grad_logits) {
  MMHAR_REQUIRE(grad_logits.rank() == 2 && grad_logits.dim(0) == last_batch_,
                "backward before forward, or batch mismatch");
  const Tensor grad_hidden = head_->backward(grad_logits);
  const Tensor grad_series = lstm_->backward(grad_hidden);
  const Tensor grad_features = grad_series.reshaped(
      {last_batch_ * config_.frames, config_.feature_dim});
  cnn_.backward(grad_features);
}

Tensor HarModel::frame_features(const Tensor& frames) {
  MMHAR_REQUIRE(frames.rank() == 3 && frames.dim(1) == config_.height &&
                    frames.dim(2) == config_.width,
                "frame_features expects [N, H, W], got "
                    << frames.shape_string());
  const std::size_t n = frames.dim(0);
  const Tensor input =
      frames.reshaped({n, 1, config_.height, config_.width});
  return cnn_.forward(input, /*training=*/false);
}

Tensor HarModel::classify_features(const Tensor& features) {
  MMHAR_REQUIRE(features.rank() == 3 &&
                    features.dim(2) == config_.feature_dim,
                "classify_features expects [B, T, F]");
  const Tensor hidden = lstm_->forward(features, /*training=*/false);
  return head_->forward(hidden, /*training=*/false);
}

std::size_t HarModel::predict(const Tensor& sample) {
  const Tensor logits = forward(
      sample.reshaped({1, config_.frames, config_.height, config_.width}),
      /*training=*/false);
  return logits.argmax();
}

Tensor HarModel::predict_probabilities(const Tensor& sample) {
  const Tensor logits = forward(
      sample.reshaped({1, config_.frames, config_.height, config_.width}),
      /*training=*/false);
  Tensor row = logits.reshaped({config_.num_classes});
  // Softmax.
  const float mx = row.max();
  double sum = 0.0;
  for (auto& v : row.flat()) {
    v = std::exp(v - mx);
    sum += v;
  }
  row *= static_cast<float>(1.0 / sum);
  return row;
}

std::vector<Tensor*> HarModel::parameters() {
  auto all = cnn_.parameters();
  for (Tensor* p : lstm_->parameters()) all.push_back(p);
  for (Tensor* p : head_->parameters()) all.push_back(p);
  return all;
}

std::vector<Tensor*> HarModel::gradients() {
  auto all = cnn_.gradients();
  for (Tensor* g : lstm_->gradients()) all.push_back(g);
  for (Tensor* g : head_->gradients()) all.push_back(g);
  return all;
}

void HarModel::zero_gradients() {
  for (Tensor* g : gradients()) g->zero();
}

std::size_t HarModel::parameter_count() {
  return nn::parameter_count(parameters());
}

namespace {

constexpr std::uint32_t kModelMagic = 0x4D524148;  // "HARM"
constexpr std::uint32_t kModelVersion = 1;

}  // namespace

void HarModel::save(const std::string& path) const {
  auto* self = const_cast<HarModel*>(this);
  save_artifact(path, kModelMagic, kModelVersion, [&](BinaryWriter& w) {
    // Architecture fingerprint: loading into a differently shaped model
    // must fail loudly, not silently reshape the weight tensors.
    w.write_u64(config_.frames);
    w.write_u64(config_.height);
    w.write_u64(config_.width);
    w.write_u64(config_.conv1_channels);
    w.write_u64(config_.conv2_channels);
    w.write_u64(config_.feature_dim);
    w.write_u64(config_.lstm_hidden);
    w.write_u64(config_.num_classes);
    self->cnn_.save(w);
    lstm_->save(w);
    head_->save(w);
  });
}

LoadResult HarModel::try_load(const std::string& path) {
  // Snapshot the weights so a payload that dies mid-read (corrupt tail)
  // cannot leave the model half-overwritten.
  std::vector<Tensor> snapshot;
  for (Tensor* p : parameters()) snapshot.push_back(*p);

  const LoadResult result =
      load_artifact(path, kModelMagic, kModelVersion, [&](BinaryReader& r) {
        const std::uint64_t arch[] = {r.read_u64(), r.read_u64(),
                                      r.read_u64(), r.read_u64(),
                                      r.read_u64(), r.read_u64(),
                                      r.read_u64(), r.read_u64()};
        const std::uint64_t want[] = {
            config_.frames,         config_.height,
            config_.width,          config_.conv1_channels,
            config_.conv2_channels, config_.feature_dim,
            config_.lstm_hidden,    config_.num_classes};
        for (std::size_t i = 0; i < 8; ++i)
          if (arch[i] != want[i])
            throw IoError("HarModel: saved architecture does not match "
                          "this model's config");
        cnn_.load(r);
        lstm_->load(r);
        head_->load(r);
      });

  if (!result.ok()) {
    const auto params = parameters();
    MMHAR_CHECK(params.size() == snapshot.size());
    for (std::size_t i = 0; i < params.size(); ++i)
      *params[i] = std::move(snapshot[i]);
  }
  return result;
}

void HarModel::load(const std::string& path) {
  const LoadResult result = try_load(path);
  if (!result.ok())
    throw IoError("HarModel::load: " + path + ": " +
                  load_status_name(result.status) +
                  (result.detail.empty() ? "" : " (" + result.detail + ")"));
}

}  // namespace mmhar::har
