#include "har/generator.h"

#include "common/check.h"
#include "mesh/human.h"

namespace mmhar::har {

std::uint64_t SampleSpec::stream_seed() const {
  Hasher h;
  hash_into(h);
  return h.value();
}

void SampleSpec::hash_into(Hasher& h) const {
  h.mix(static_cast<int>(activity))
      .mix(participant)
      .mix(distance_m)
      .mix(angle_deg)
      .mix(static_cast<std::uint64_t>(repetition))
      .mix(seed);
}

void TriggerPlacement::hash_into(Hasher& h) const {
  h.mix(spec.width_m)
      .mix(spec.height_m)
      .mix(static_cast<double>(spec.reflectivity))
      .mix(static_cast<int>(spec.under_clothing))
      .mix(static_cast<double>(spec.clothing_attenuation))
      .mix(spec.standoff_m)
      .mix(local_position.x)
      .mix(local_position.y)
      .mix(local_position.z)
      .mix(local_normal.x)
      .mix(local_normal.y)
      .mix(local_normal.z);
}

void GeneratorConfig::hash_into(Hasher& h) const {
  radar.hash_into(h);
  h.mix(heatmap.range_bins)
      .mix(heatmap.angle_bins)
      .mix(static_cast<int>(heatmap.remove_clutter))
      .mix(static_cast<int>(heatmap.normalize))
      .mix(static_cast<int>(heatmap.normalize_per_sequence))
      .mix(static_cast<int>(heatmap.log_scale))
      .mix(static_cast<double>(heatmap.db_floor))
      .mix(static_cast<int>(environment))
      .mix(num_frames)
      .mix(activity_duration_s)
      .mix(radar_height_m)
      .mix(jitter.amplitude_sigma)
      .mix(jitter.center_sigma)
      .mix(jitter.phase_sigma)
      .mix(jitter.tremor_sigma)
      .mix(jitter.sway_amplitude_m)
      .mix(jitter.sway_freq_hz);
}

SampleGenerator::SampleGenerator(GeneratorConfig config)
    : config_(std::move(config)),
      environment_(radar::build_environment(config_.environment)) {
  MMHAR_REQUIRE(config_.num_frames >= 2, "need at least 2 frames");
  // Environment presets are authored with the floor at z = 0; shift so
  // the radar (origin) sits at its mounting height.
  environment_.translate({0.0, 0.0, -config_.radar_height_m});
}

std::vector<mesh::TriMesh> SampleGenerator::build_world_meshes(
    const SampleSpec& spec, const TriggerPlacement* trigger) const {
  const mesh::HumanBody body(mesh::BodyParams::participant(spec.participant));
  const mesh::ActivityAnimator animator(body, config_.jitter);

  Rng rng(spec.stream_seed());
  Rng motion_rng = rng.fork(0x4D4F);  // motion stream
  const auto poses =
      animator.animate(spec.activity, config_.num_frames, motion_rng);
  Rng sway_rng = rng.fork(0x5357);  // sway stream
  const auto sway =
      mesh::body_sway_offsets(config_.jitter, config_.num_frames,
                              config_.activity_duration_s, sway_rng);

  const double angle_rad = mesh::deg2rad(spec.angle_deg);
  std::vector<mesh::TriMesh> frames;
  frames.reserve(poses.size());
  for (std::size_t f = 0; f < poses.size(); ++f) {
    mesh::TriMesh m = body.build(poses[f]);
    if (trigger != nullptr) {
      mesh::attach_trigger(m, trigger->local_position, trigger->local_normal,
                           trigger->spec);
    }
    // Whole-body postural sway (body-local frame, before placement).
    m.translate(sway[f]);
    mesh::place_in_world(m, spec.distance_m, angle_rad);
    // Drop the world so the radar sits at its mounting height.
    m.translate({0.0, 0.0, -config_.radar_height_m});
    frames.push_back(std::move(m));
  }
  return frames;
}

std::vector<dsp::RadarCube> SampleGenerator::generate_cubes(
    const SampleSpec& spec, const TriggerPlacement* trigger) const {
  const auto frames = build_world_meshes(spec, trigger);
  const radar::Simulator sim(config_.radar);
  Rng rng(spec.stream_seed());
  Rng noise_rng = rng.fork(0x4E4F);  // noise stream
  const double frame_dt =
      config_.activity_duration_s / static_cast<double>(config_.num_frames);
  return sim.simulate_sequence(frames, &environment_, frame_dt, &noise_rng);
}

Tensor SampleGenerator::generate(const SampleSpec& spec,
                                 const TriggerPlacement* trigger) const {
  const auto cubes = generate_cubes(spec, trigger);
  return dsp::compute_drai_sequence(cubes, config_.heatmap);
}

SampleViews SampleGenerator::generate_views(
    const SampleSpec& spec, const TriggerPlacement* trigger) const {
  const auto cubes = generate_cubes(spec, trigger);
  SampleViews views;
  views.spectra = dsp::compute_range_spectra(cubes, config_.heatmap);
  views.heatmaps = dsp::compute_drai_sequence(views.spectra, config_.heatmap);
  return views;
}

}  // namespace mmhar::har
