// End-to-end sample generation: activity spec -> posed meshes -> simulated
// IF signals -> DRAI heatmap sequence.
//
// A `SampleSpec` fully determines one activity repetition (activity,
// participant, position, repetition index, master seed), so any sample can
// be re-synthesized bit-identically — with or without a trigger attached —
// which is exactly what the attack pipeline needs to build its poisoned
// twins of clean training samples.
#pragma once

#include <cstdint>
#include <optional>

#include "dsp/heatmap.h"
#include "mesh/activity.h"
#include "mesh/trigger.h"
#include "radar/scene.h"
#include "radar/simulator.h"
#include "tensor/tensor.h"

namespace mmhar::har {

/// Identity of one activity repetition.
struct SampleSpec {
  mesh::Activity activity = mesh::Activity::Push;
  int participant = 0;        ///< 0..2, selects BodyParams
  double distance_m = 1.6;    ///< radial distance to the radar
  double angle_deg = 0.0;     ///< azimuth of the subject
  std::uint32_t repetition = 0;
  std::uint64_t seed = 1;     ///< master randomness seed

  /// Deterministic per-spec stream: motion jitter + receiver noise.
  std::uint64_t stream_seed() const;
  void hash_into(Hasher& h) const;
};

/// Where and what the attached trigger is (body-local coordinates).
struct TriggerPlacement {
  mesh::TriggerSpec spec;
  mesh::Vec3 local_position;
  mesh::Vec3 local_normal{-1.0, 0.0, 0.0};

  void hash_into(Hasher& h) const;
};

/// Generation-wide configuration.
struct GeneratorConfig {
  radar::FmcwConfig radar;
  dsp::HeatmapConfig heatmap;
  radar::EnvironmentKind environment = radar::EnvironmentKind::Hallway;
  std::size_t num_frames = 32;
  double activity_duration_s = 0.5;
  /// Height of the radar above the floor (the paper's board-mounted
  /// MMWCAS-RF-EVM sits at roughly chest height). World geometry is
  /// shifted down by this amount so the radar stays at the origin.
  double radar_height_m = 1.1;
  mesh::MotionJitter jitter;

  void hash_into(Hasher& h) const;
};

/// One generated sample plus the intermediate range spectra it was built
/// from. Keeping the spectra lets callers derive more views (RDI, range
/// profile, gated Doppler) of the same repetition without re-running the
/// simulator or the Range-FFT stage.
struct SampleViews {
  Tensor heatmaps;                        ///< DRAI [T, range, angle]
  std::vector<dsp::RangeSpectra> spectra; ///< per-frame Range-FFT output
};

class SampleGenerator {
 public:
  explicit SampleGenerator(GeneratorConfig config);

  const GeneratorConfig& config() const { return config_; }

  /// Generate the DRAI heatmap sequence [T, range_bins, angle_bins] for a
  /// spec, optionally with a trigger merged into the body mesh.
  Tensor generate(const SampleSpec& spec,
                  const TriggerPlacement* trigger = nullptr) const;

  /// As generate(), but also returns the per-frame range spectra so the
  /// caller can build further views (compute_rdi / range_profile) from one
  /// Range-FFT pass. Bit-identical heatmaps to generate().
  SampleViews generate_views(const SampleSpec& spec,
                             const TriggerPlacement* trigger = nullptr) const;

  /// Generate the raw IF radar cubes instead of heatmaps (tests, RDI).
  std::vector<dsp::RadarCube> generate_cubes(
      const SampleSpec& spec,
      const TriggerPlacement* trigger = nullptr) const;

  /// Posed world-frame body meshes for a spec (shared topology).
  std::vector<mesh::TriMesh> build_world_meshes(
      const SampleSpec& spec, const TriggerPlacement* trigger) const;

 private:
  GeneratorConfig config_;
  mesh::TriMesh environment_;
};

}  // namespace mmhar::har
