// Classification metrics: confusion matrix and derived statistics.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace mmhar::har {

class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::size_t num_classes);

  void add(std::size_t true_label, std::size_t predicted_label);
  std::size_t count(std::size_t true_label, std::size_t predicted) const;
  std::size_t total() const { return total_; }

  /// Overall accuracy (0 when empty).
  double accuracy() const;
  /// Per-class recall (diagonal / row sum; 0 for empty rows).
  std::vector<double> per_class_recall() const;
  /// Per-class precision (diagonal / column sum; 0 for empty columns).
  std::vector<double> per_class_precision() const;

  /// Pretty table, optionally with class names (paper Fig. 7 style).
  std::string to_string(const std::vector<std::string>& class_names = {}) const;

  std::size_t num_classes() const { return num_classes_; }

 private:
  std::size_t num_classes_;
  std::size_t total_ = 0;
  std::vector<std::size_t> counts_;  // row-major [true][pred]
};

}  // namespace mmhar::har
