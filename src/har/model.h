// The CNN-LSTM HAR classifier (paper §II-A).
//
// A per-frame CNN extracts spatial features from each DRAI heatmap; an
// LSTM consumes the 32-step feature series; a fully connected head maps
// the final hidden state to the six activity logits. The per-frame
// feature extractor is exposed separately because both the SHAP frame
// scoring (Eq. 1) and the trigger-position objective (Eq. 2) operate on
// CNN features l_θ(h(·)).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/artifact_store.h"
#include "nn/conv.h"
#include "nn/dense.h"
#include "nn/lstm.h"
#include "nn/sequential.h"

namespace mmhar::har {

struct HarModelConfig {
  std::size_t frames = 32;       ///< heatmaps per activity sample
  std::size_t height = 32;       ///< range bins
  std::size_t width = 32;        ///< angle bins
  std::size_t conv1_channels = 8;
  std::size_t conv2_channels = 16;
  std::size_t feature_dim = 64;  ///< per-frame CNN feature size
  std::size_t lstm_hidden = 64;
  std::size_t num_classes = 6;
  std::uint64_t seed = 42;       ///< weight-initialization seed
};

class HarModel {
 public:
  explicit HarModel(const HarModelConfig& config);

  const HarModelConfig& config() const { return config_; }

  /// Full forward pass: [B, T, H, W] -> logits [B, C].
  Tensor forward(const Tensor& batch, bool training);

  /// Backward pass from dLoss/dLogits; accumulates parameter gradients.
  void backward(const Tensor& grad_logits);

  /// CNN feature extractor l_θ: frames [N, H, W] -> features [N, F].
  /// Runs in inference mode and does not disturb training caches is NOT
  /// guaranteed — do not interleave with an in-flight forward/backward.
  Tensor frame_features(const Tensor& frames);

  /// LSTM + head over an explicit feature series [B, T, F] -> logits.
  /// This is the model f(x) that SHAP explains frame-by-frame.
  Tensor classify_features(const Tensor& features);

  /// Single-sample convenience: [T, H, W] -> predicted class index.
  std::size_t predict(const Tensor& sample);

  /// Single-sample class probabilities.
  Tensor predict_probabilities(const Tensor& sample);

  std::vector<Tensor*> parameters();
  std::vector<Tensor*> gradients();
  void zero_gradients();
  std::size_t parameter_count();

  /// Write atomically with a checksummed container and an architecture
  /// fingerprint (see common/artifact_store.h). Throws IoError on write
  /// failure; any previous file at `path` stays intact.
  void save(const std::string& path) const;

  /// Load weights from `path`; throws IoError when the file is missing,
  /// corrupt (quarantined first), or saved from a different architecture.
  /// On throw the model's weights are unspecified — reconstruct before
  /// reuse.
  void load(const std::string& path);

  /// Non-throwing load. Weights are modified only when the result is Ok;
  /// any partial read is rolled back to the pre-call values.
  LoadResult try_load(const std::string& path);

 private:
  HarModelConfig config_;
  nn::Sequential cnn_;
  std::unique_ptr<nn::LSTM> lstm_;
  std::unique_ptr<nn::Dense> head_;

  // Forward cache for backward().
  std::size_t last_batch_ = 0;
};

}  // namespace mmhar::har
