// Activity datasets: generation grids, batching, and the on-disk cache.
//
// The paper's collection protocol (§VI-B): 3 participants x 12 positions
// (4 distances x 3 angles) x 6 activities x N repetitions. A
// `DatasetConfig` reproduces that grid at configurable scale; datasets are
// deterministic functions of (GeneratorConfig, DatasetConfig) and are
// cached on disk under a hash of both, so repeated bench runs skip the
// (comparatively expensive) RF simulation.
#pragma once

#include <string>
#include <vector>

#include "common/artifact_store.h"
#include "har/generator.h"

namespace mmhar::har {

struct Sample {
  SampleSpec spec;
  Tensor heatmaps;  ///< [T, range_bins, angle_bins]
  std::size_t label = 0;
};

class Dataset {
 public:
  Dataset() = default;

  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  std::size_t num_classes() const { return num_classes_; }
  void set_num_classes(std::size_t n) { num_classes_ = n; }

  const Sample& sample(std::size_t i) const;
  Sample& sample(std::size_t i);
  void add(Sample sample);

  /// Indices of all samples with the given label.
  std::vector<std::size_t> indices_of_label(std::size_t label) const;

  /// Assemble a training batch [B, T, H, W] from sample indices.
  Tensor batch_of(const std::vector<std::size_t>& indices) const;
  std::vector<std::size_t> labels_of(
      const std::vector<std::size_t>& indices) const;

  /// Write atomically (temp + rename) with a checksummed container; see
  /// common/artifact_store.h. Throws IoError if the write fails — the
  /// previous file at `path`, if any, is left intact.
  void save(const std::string& path) const;

  /// Load `path`, throwing IoError when it is missing/corrupt (a corrupt
  /// file is quarantined as `<path>.corrupt` first).
  static Dataset load(const std::string& path);

  /// Non-throwing load: `out` is assigned only on LoadStatus::Ok.
  static LoadResult try_load(const std::string& path, Dataset& out);

 private:
  std::vector<Sample> samples_;
  std::size_t num_classes_ = 6;
};

/// Collection grid (positions / participants / repetitions).
struct DatasetConfig {
  std::vector<int> participants{0, 1, 2};
  std::vector<double> distances_m{0.8, 1.2, 1.6, 2.0};
  std::vector<double> angles_deg{-30.0, 0.0, 30.0};
  /// Activity subset as label indices (attack test sets restrict this to
  /// the victim activity).
  std::vector<std::size_t> activities{0, 1, 2, 3, 4, 5};
  std::size_t repetitions = 1;
  /// First repetition index; disjoint offsets give disjoint train/test
  /// repetitions of the same grid.
  std::uint32_t repetition_offset = 0;
  std::uint64_t seed = 7;

  std::size_t total_samples() const {
    return participants.size() * distances_m.size() * angles_deg.size() *
           repetitions * activities.size();
  }
  void hash_into(Hasher& h) const;
};

/// Generate every sample in the grid (no cache).
Dataset build_dataset(const SampleGenerator& generator,
                      const DatasetConfig& config);

/// Cache-aware generation: loads `cache_dir/<hash>.ds` when present,
/// otherwise builds and stores it. Cache dir defaults to $MMHAR_CACHE_DIR
/// or ".mmhar_cache".
Dataset load_or_build_dataset(const SampleGenerator& generator,
                              const DatasetConfig& config,
                              std::string cache_dir = "");

}  // namespace mmhar::har
