#include "serving/model_registry.h"

#include "common/check.h"

namespace mmhar::serving {

namespace {

bool same_architecture(const har::HarModelConfig& a,
                       const har::HarModelConfig& b) {
  // Everything but the weight-initialization seed: weights may differ
  // (that is the point of A/B-ing clean vs backdoored), geometry may not.
  return a.frames == b.frames && a.height == b.height && a.width == b.width &&
         a.conv1_channels == b.conv1_channels &&
         a.conv2_channels == b.conv2_channels &&
         a.feature_dim == b.feature_dim && a.lstm_hidden == b.lstm_hidden &&
         a.num_classes == b.num_classes;
}

}  // namespace

ModelRegistry::ModelRegistry(har::HarModel& base) {
  plans_.push_back(har::build_inference_plan(base));
}

std::size_t ModelRegistry::add(har::HarModel& model) {
  MMHAR_REQUIRE(same_architecture(model.config(), arch()),
                "ModelRegistry::add: model architecture differs from model 0 "
                "(all HarModelConfig fields except seed must match)");
  plans_.push_back(har::build_inference_plan(model));
  return plans_.size() - 1;
}

const har::InferencePlan& ModelRegistry::plan(std::size_t id) const {
  MMHAR_CHECK(id < plans_.size());
  return plans_[id];
}

}  // namespace mmhar::serving
