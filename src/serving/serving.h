// Streaming HAR inference service: many concurrent radar streams in,
// micro-batched classifications out.
//
// Architecture (one box per thread role):
//
//   producers (N threads)          batcher (1 thread)         consumers
//   ─────────────────────          ──────────────────         ─────────
//   submit_frame(cube) ──► per-stream frame ring ──► claim round-robin
//                          (bounded, drop policy)        │
//                                                 fused Range-FFT
//                                                 (one fft_many_crop_multi
//                                                  call, SIMD lanes across
//                                                  streams)
//                                                        │
//                                                 clutter removal (serial)
//                                                        │
//                                                 fused Angle-FFT → DRAI
//                                                 (one fft_many_mag_accum_
//                                                  multi call)
//                                                        │
//                                                 per-stream sliding window
//                                                 (T raw DRAI frames)
//                                                        │
//                                                 micro-batched CNN-LSTM
//                                                 (prepacked-GEMM
//                                                  InferencePlan)
//                                                        │
//                          per-stream result ring ◄── push ──► poll()
//
// Ownership boundaries: the InferencePlan, window geometry, and packed
// weights are immutable after construction; all per-cycle working state
// lives in batcher-owned grow-once arenas. After a warm-up cycle the
// whole submit → classify path performs zero heap allocations (asserted
// by tests via the mmhar_alloc_count hook).
//
// Backpressure: every stream's frame ring is bounded (queue_depth). When
// a producer submits into a full ring, DropPolicy::kOldest discards the
// oldest *queued* frame (frames the batcher already claimed are never
// dropped) and accepts the new one; DropPolicy::kNewest rejects the new
// frame. Either way memory stays bounded and the per-stream drop/reject
// counters expose the overload instead of hiding it.
//
// Determinism: a stream's classification sequence is a pure function of
// the frames that survive admission, regardless of how many other
// streams share the batcher. The fused FFT entry points are per-lane
// independent and no GEMM in the inference path has a batch-dependent
// fast path, so serving a stream alone, alongside 63 others, or replaying
// it after drops yields bit-identical logits (tested).
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "dsp/heatmap.h"
#include "har/infer.h"
#include "har/model.h"

namespace mmhar::serving {

/// What submit_frame does when a stream's frame ring is full.
enum class DropPolicy {
  kOldest,  ///< drop the oldest queued frame, accept the new one
  kNewest,  ///< reject the new frame
};

/// Upper bound on HarModelConfig::num_classes the fixed-size result
/// record supports (avoids per-result allocation).
inline constexpr std::size_t kMaxServingClasses = 16;

struct ServingConfig {
  std::size_t max_streams = 64;   ///< streams preallocated at construction
  std::size_t queue_depth = 4;    ///< per-stream frame-ring capacity
  std::size_t batch_max = 64;     ///< frames fused per batcher cycle
  std::size_t result_depth = 64;  ///< per-stream result-ring capacity
  DropPolicy drop_policy = DropPolicy::kOldest;

  // Radar frame geometry every stream must honor.
  std::size_t num_chirps = 16;
  std::size_t num_antennas = 16;
  std::size_t num_samples = 64;

  /// DSP chain configuration; range_bins/angle_bins must match the
  /// model's height/width and normalize_per_sequence must be set (the
  /// window normalizes over the whole T-frame sequence, exactly like
  /// compute_drai_sequence).
  dsp::HeatmapConfig heatmap;

  /// Defaults overridden by MMHAR_SERVING_BATCH / _QUEUE_DEPTH /
  /// _DROP_POLICY ("oldest" | "newest").
  static ServingConfig from_env();
};

/// One classification result for a stream.
struct Classification {
  std::uint64_t frame_seq = 0;  ///< per-stream seq of the window's newest frame
  std::size_t predicted = 0;    ///< argmax class index
  std::int64_t latency_ns = 0;  ///< newest-frame submit → classification
  float logits[kMaxServingClasses] = {};
};

/// Monotonic per-stream counters (snapshot).
struct StreamStats {
  std::uint64_t submitted = 0;        ///< submit_frame calls
  std::uint64_t accepted = 0;         ///< frames admitted to the ring
  std::uint64_t dropped_frames = 0;   ///< queued frames evicted (kOldest)
  std::uint64_t rejected_frames = 0;  ///< submissions refused (ring full)
  std::uint64_t classifications = 0;  ///< results produced
  std::uint64_t dropped_results = 0;  ///< results evicted from a full ring
};

class StreamingHarService {
 public:
  /// Snapshots `model`'s weights into an InferencePlan and preallocates
  /// every ring and arena; later training of `model` does not affect the
  /// service.
  StreamingHarService(const ServingConfig& config, har::HarModel& model);
  ~StreamingHarService();
  StreamingHarService(const StreamingHarService&) = delete;
  StreamingHarService& operator=(const StreamingHarService&) = delete;

  const ServingConfig& config() const { return config_; }

  /// Activate the next stream slot; returns its id. Thread-safe; fails
  /// once max_streams are active.
  std::size_t add_stream();

  /// Copy one radar frame into `stream`'s ring. Returns true when the
  /// frame was admitted (possibly evicting an older queued frame under
  /// kOldest), false when it was rejected. Thread-safe; one producer per
  /// stream is the intended pattern but not required.
  bool submit_frame(std::size_t stream,
                    const dsp::RadarCube& cube) MMHAR_REALTIME_HANDOFF;

  /// Pop up to out.size() pending results for `stream` (oldest first).
  /// Returns the number written. Thread-safe.
  std::size_t poll(std::size_t stream,
                   std::span<Classification> out) MMHAR_REALTIME_HANDOFF;

  StreamStats stream_stats(std::size_t stream) const MMHAR_REALTIME_HANDOFF;

  /// Spawn the background batcher thread. start/stop/run_cycle must be
  /// sequenced by the owner (single controlling thread).
  void start();

  /// Ask the batcher to exit and join it. Idempotent.
  void stop();

  /// Run one batcher cycle on the calling thread: claim up to batch_max
  /// queued frames, run the fused DSP + micro-batched inference pipeline,
  /// publish results. Returns the number of frames processed. Only valid
  /// while the background batcher is NOT running — tests and benchmarks
  /// use this for deterministic, single-threaded pumping.
  std::size_t run_cycle() MMHAR_REALTIME_HANDOFF;

 private:
  struct Stream;
  struct Sched;
  struct BatcherState;

  // The MMHAR_REALTIME_HANDOFF annotations above and below form the
  // serving steady-state root set of tools/mmhar_rtcheck (see
  // tools/rtcheck_roots.txt): everything reachable from them is proved
  // allocation-, blocking-, throw-free, with bounded lock hand-offs
  // permitted only in the annotated bodies themselves. batcher_main is
  // deliberately NOT annotated: its condvar wait is the idle-side sleep,
  // outside the real-time region that starts once work exists.
  Stream* stream_ptr(std::size_t idx) const MMHAR_REALTIME_HANDOFF;
  void batcher_main();
  std::size_t claim_round(std::size_t budget) MMHAR_REALTIME_HANDOFF;
  void process_round(std::size_t n_claims) MMHAR_REALTIME_HANDOFF;

  ServingConfig config_;
  std::size_t window_frames_ = 0;   ///< T, from the model config
  std::size_t num_classes_ = 0;
  const float* range_window_ = nullptr;  ///< cached window table (stable)
  har::InferencePlan plan_;

  std::unique_ptr<Sched> sched_;
  std::unique_ptr<BatcherState> batch_;

  // Stream registry: the vector is reserved to max_streams up front, so
  // element storage never moves; Stream objects are heap-stable.
  struct Registry;
  std::unique_ptr<Registry> registry_;

  std::thread batcher_thread_;
  bool started_ = false;  ///< owner-thread state, not shared
};

}  // namespace mmhar::serving
