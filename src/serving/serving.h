// Streaming HAR inference service: many concurrent radar streams in,
// micro-batched classifications out, scaled across N batcher shards.
//
// Architecture (one box per thread role):
//
//   producers (N threads)          shard workers (S threads)      consumers
//   ─────────────────────          ─────────────────────────      ─────────
//   submit_frame(cube) ──► per-stream frame ring ──► owning shard claims
//                          (bounded, drop policy)    round-robin (≤1 frame/
//                                                    stream/round), dropping
//                                                    frames past deadline
//                                                         │
//                                                    fused Range-FFT
//                                                    (one fft_many_crop_multi
//                                                     call per shard round,
//                                                     SIMD lanes across the
//                                                     shard's streams)
//                                                         │
//                                                    clutter removal (serial)
//                                                         │
//                                                    fused Angle-FFT → DRAI
//                                                    (one fft_many_mag_accum_
//                                                     multi call)
//                                                         │
//                                                    per-stream sliding window
//                                                    (T raw DRAI frames)
//                                                         │
//                                                    per-model micro-batched
//                                                    CNN-LSTM (prepacked-GEMM
//                                                    InferencePlan from the
//                                                    ModelRegistry)
//                                                         │
//                          per-stream result ring ◄── push ──► poll()
//
// Sharding: each stream is pinned to one shard by a stable affinity hash
// of its id (serving/affinity.h), so every piece of per-stream state —
// frame ring, sliding DRAI window, result ring — has exactly one
// consuming thread and shards share nothing but the immutable config and
// model plans. Because the assignment is a pure function of the stream id
// and the per-lane DSP / per-row GEMM arithmetic is independent of batch
// composition, a stream's classification sequence is bit-identical for
// ANY shard count (tested for shards ∈ {1, 2, 4}, including under TSan).
//
// Deadline scheduling: when ServingConfig::slo_ms > 0 every admitted
// frame carries an implicit deadline (arrival + SLO). A shard discards
// queued frames whose deadline has already passed instead of burning its
// cycle on work nobody can use, and a classification that would be
// published after its newest frame's deadline is discarded too — so under
// overload the latency of *delivered* results stays bounded by the SLO
// and the overflow shows up in StreamStats::deadline_dropped instead of
// in a collapsing tail. slo_ms = 0 (default) preserves pure FIFO.
//
// Multi-model: the service owns a ModelRegistry; each stream is keyed to
// one registered model version at add_stream time (clean vs backdoored
// A/B over live streams is the intended experiment). A shard cycle
// micro-batches each model's completed windows through that model's
// prepacked-GEMM plan; with a single registered model the gather
// degenerates to the one-big-batch fast path.
//
// Ownership boundaries: the ModelRegistry, window geometry, and packed
// weights are immutable once serving starts; all per-cycle working state
// lives in shard-owned grow-once arenas. After a warm-up cycle the whole
// submit → classify path performs zero heap allocations on every shard
// (asserted by tests via the mmhar_alloc_count hook).
//
// Backpressure: every stream's frame ring is bounded (queue_depth). When
// a producer submits into a full ring, DropPolicy::kOldest discards the
// oldest *queued* frame (frames the shard already claimed are never
// dropped) and accepts the new one; DropPolicy::kNewest rejects the new
// frame. Either way memory stays bounded and the per-stream drop/reject/
// deadline counters expose the overload instead of hiding it.
//
// Fault containment (DESIGN.md §6c): a poisoned frame, a failing
// inference row, or a dying shard worker is a per-stream (or per-shard)
// event, never process death.
//   * Quarantine — every claimed frame is scanned at the claim boundary;
//     a non-finite payload is dropped and counted in
//     StreamStats::quarantined before it can reach the fused DSP.
//   * Degradation — mmhar::Error at a DSP or inference boundary falls
//     back to per-frame / per-row (batch-1) reruns, so only the faulty
//     row is sacrificed (counted in StreamStats::errors); per-lane FFT
//     and per-row GEMM arithmetic is batch-composition independent, so
//     every surviving stream's logits stay bit-identical to a fault-free
//     run. A stream exceeding max_stream_faults consecutive faults is
//     suspended: its backlog is shed (suspended_dropped) and only one
//     recovery-probe frame per cycle is processed until a frame succeeds.
//   * Supervision — shard_main lets no exception escape (a crash marks
//     the shard and parks it); when watchdog_ms > 0 a watchdog thread
//     compares per-shard heartbeat epochs against pending work, restarts
//     crashed or stalled workers with an arena reset while the other
//     shards keep serving, and the whole story is snapshotted by
//     health(). Fault-injection sites serving.frame_poison /
//     serving.infer_fail / serving.shard_stall / serving.shard_crash
//     (common/fault_injection.h) drive every one of these paths
//     deterministically in tests; disarmed, they cost one relaxed atomic
//     load and the zero-allocation steady state is unchanged.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "dsp/heatmap.h"
#include "har/infer.h"
#include "har/model.h"
#include "serving/model_registry.h"

namespace mmhar::serving {

/// What submit_frame does when a stream's frame ring is full.
enum class DropPolicy {
  kOldest,  ///< drop the oldest queued frame, accept the new one
  kNewest,  ///< reject the new frame
};

/// Upper bound on HarModelConfig::num_classes the fixed-size result
/// record supports (avoids per-result allocation).
inline constexpr std::size_t kMaxServingClasses = 16;

struct ServingConfig {
  std::size_t max_streams = 64;   ///< streams preallocated at construction
  std::size_t queue_depth = 4;    ///< per-stream frame-ring capacity
  std::size_t batch_max = 64;     ///< frames fused per shard cycle
  std::size_t result_depth = 64;  ///< per-stream result-ring capacity
  std::size_t num_shards = 1;     ///< batcher shards (one worker each)
  DropPolicy drop_policy = DropPolicy::kOldest;

  /// Admission SLO in milliseconds; 0 disables deadline scheduling. A
  /// frame older than this is dropped at claim time, and a result that
  /// would publish past it is dropped at publish time (both counted in
  /// StreamStats::deadline_dropped).
  long slo_ms = 0;

  /// Consecutive contained faults (quarantines + errors) a stream may
  /// accumulate before it is suspended; 0 never suspends. A suspended
  /// stream sheds its queued backlog and processes one recovery-probe
  /// frame per cycle; the first clean frame lifts the suspension.
  std::size_t max_stream_faults = 3;

  /// Shard-supervision watchdog cadence in milliseconds; 0 (default)
  /// disables supervision entirely (no watchdog thread). When enabled,
  /// a worker whose heartbeat freezes while work is pending, or that
  /// died containing an escaped exception, is restarted with its cycle
  /// arenas reset while the other shards keep serving.
  long watchdog_ms = 0;

  // Radar frame geometry every stream must honor.
  std::size_t num_chirps = 16;
  std::size_t num_antennas = 16;
  std::size_t num_samples = 64;

  /// DSP chain configuration; range_bins/angle_bins must match the
  /// model's height/width and normalize_per_sequence must be set (the
  /// window normalizes over the whole T-frame sequence, exactly like
  /// compute_drai_sequence).
  dsp::HeatmapConfig heatmap;

  /// Defaults overridden by MMHAR_SERVING_BATCH / _QUEUE_DEPTH /
  /// _DROP_POLICY ("oldest" | "newest") / _SHARDS / _SLO_MS /
  /// _MAX_STREAM_FAULTS / _WATCHDOG_MS.
  static ServingConfig from_env();
};

/// One classification result for a stream.
struct Classification {
  std::uint64_t frame_seq = 0;  ///< per-stream seq of the window's newest frame
  std::size_t predicted = 0;    ///< argmax class index
  std::int64_t latency_ns = 0;  ///< newest-frame submit → classification
  float logits[kMaxServingClasses] = {};
};

/// Monotonic per-stream counters (snapshot).
struct StreamStats {
  std::uint64_t submitted = 0;         ///< submit_frame calls
  std::uint64_t accepted = 0;          ///< frames admitted to the ring
  std::uint64_t dropped_frames = 0;    ///< queued frames evicted (kOldest)
  std::uint64_t rejected_frames = 0;   ///< submissions refused (ring full)
  std::uint64_t deadline_dropped = 0;  ///< frames/results past the SLO deadline
  std::uint64_t deepest_queue = 0;     ///< frame-ring occupancy high-watermark
  std::uint64_t classifications = 0;   ///< results produced
  std::uint64_t dropped_results = 0;   ///< results evicted from a full ring
  std::uint64_t quarantined = 0;       ///< non-finite frames dropped at claim
  std::uint64_t errors = 0;            ///< contained DSP/inference faults
  std::uint64_t suspended_dropped = 0; ///< backlog shed while suspended
  std::uint64_t suspensions = 0;       ///< times the stream entered suspension
  bool suspended = false;              ///< currently suspended (probing)
};

/// Monotonic per-shard counters (snapshot; relaxed reads of the shard
/// worker's single-writer counters).
struct ShardStats {
  std::uint64_t cycles = 0;            ///< shard cycles that consumed frames
  std::uint64_t frames = 0;            ///< frames claimed and processed
  std::uint64_t classifications = 0;   ///< results published
  std::uint64_t deadline_dropped = 0;  ///< deadline drops (claim + publish)
};

/// Supervision snapshot for one shard (see ServiceHealth).
struct ShardHealth {
  bool crashed = false;       ///< worker died containing an exception and
                              ///< awaits a watchdog restart
  bool stalled = false;       ///< watchdog saw a frozen heartbeat with
                              ///< work pending (cleared on progress)
  std::uint64_t heartbeat = 0;  ///< wake-up epochs of the worker loop
  std::uint64_t restarts = 0;   ///< supervised worker restarts
  std::uint64_t faults = 0;     ///< contained faults observed by this shard
};

/// Whole-service fault/supervision snapshot (cold path: allocates the
/// per-shard vector; not for the serving hot loop).
struct ServiceHealth {
  bool watchdog_running = false;
  std::uint64_t quarantined = 0;        ///< sum of StreamStats::quarantined
  std::uint64_t errors = 0;             ///< sum of StreamStats::errors
  std::uint64_t restarts = 0;           ///< sum of ShardHealth::restarts
  std::size_t suspended_streams = 0;    ///< streams currently suspended
  std::vector<ShardHealth> shards;
};

class StreamingHarService {
 public:
  /// Snapshots `model`'s weights into the registry as model id 0 and
  /// preallocates every ring and per-shard arena; later training of
  /// `model` does not affect the service.
  StreamingHarService(const ServingConfig& config, har::HarModel& model);
  ~StreamingHarService();
  StreamingHarService(const StreamingHarService&) = delete;
  StreamingHarService& operator=(const StreamingHarService&) = delete;

  const ServingConfig& config() const { return config_; }

  /// Register another model version (same architecture as model 0, seed
  /// excepted); returns its id. Setup-phase only: must be called before
  /// start() — the registry is read lock-free by running shards.
  std::size_t add_model(har::HarModel& model);
  std::size_t num_models() const { return models_.size(); }

  /// Activate the next stream slot, classified by `model_id` (default:
  /// model 0) and pinned to its affinity shard; returns the stream id.
  /// Thread-safe; fails once max_streams are active.
  std::size_t add_stream(std::size_t model_id = 0);

  /// Shard the affinity hash pinned `stream` to.
  std::size_t shard_of_stream(std::size_t stream) const MMHAR_REALTIME_HANDOFF;

  /// Copy one radar frame into `stream`'s ring. Returns true when the
  /// frame was admitted (possibly evicting an older queued frame under
  /// kOldest), false when it was rejected. Thread-safe; one producer per
  /// stream is the intended pattern but not required.
  bool submit_frame(std::size_t stream,
                    const dsp::RadarCube& cube) MMHAR_REALTIME_HANDOFF;

  /// Pop up to out.size() pending results for `stream` (oldest first).
  /// Returns the number written. Thread-safe.
  std::size_t poll(std::size_t stream,
                   std::span<Classification> out) MMHAR_REALTIME_HANDOFF;

  StreamStats stream_stats(std::size_t stream) const MMHAR_REALTIME_HANDOFF;
  ShardStats shard_stats(std::size_t shard) const;

  /// Fault/supervision snapshot: per-shard crash/stall/heartbeat/restart
  /// state plus service-wide quarantine, error, and suspension totals.
  /// Thread-safe, cold path (allocates the result vector).
  ServiceHealth health() const;

  /// Spawn one background worker per shard, plus the supervision
  /// watchdog when config().watchdog_ms > 0. start/stop/run_cycle must
  /// be sequenced by the owner (single controlling thread).
  void start();

  /// Ask the watchdog and every shard worker to exit and join them.
  /// Idempotent.
  void stop();

  /// Run one cycle of every shard on the calling thread, in shard order.
  /// Returns the number of frames consumed (claimed + deadline-expired).
  /// Only valid while the background workers are NOT running — tests and
  /// benchmarks use this for deterministic, single-threaded pumping.
  std::size_t run_cycle() MMHAR_REALTIME_HANDOFF;

  /// One cycle of a single shard (what a shard worker runs per wake-up):
  /// claim up to batch_max queued frames owned by `shard`, run the fused
  /// DSP + per-model micro-batched inference pipeline, publish results.
  /// Returns the number of frames consumed. Thread-safe against the other
  /// shards; at most one caller per shard.
  std::size_t run_shard_cycle(std::size_t shard) MMHAR_REALTIME_HANDOFF;

 private:
  struct Stream;
  struct Shard;
  struct WindowTable;

  // The MMHAR_REALTIME_HANDOFF annotations above and below form the
  // serving steady-state root set of tools/mmhar_rtcheck (see
  // tools/rtcheck_roots.txt): everything reachable from them is proved
  // allocation-, blocking-, throw-free, with bounded lock hand-offs
  // permitted only in the annotated bodies themselves. shard_main is
  // deliberately NOT annotated: its condvar wait is the idle-side sleep,
  // outside the real-time region that starts once work exists.
  Stream* stream_ptr(std::size_t idx) const MMHAR_REALTIME_HANDOFF;
  void shard_main(std::size_t shard);
  std::size_t claim_round(Shard& sh, std::size_t budget, std::size_t* expired,
                          std::size_t* shed) MMHAR_REALTIME_HANDOFF;
  std::size_t quarantine_claims(Shard& sh,
                                std::size_t n_claims) MMHAR_REALTIME_HANDOFF;
  void record_stream_fault(Shard& sh, Stream* s,
                           bool quarantine) MMHAR_REALTIME_HANDOFF;
  void clear_stream_fault_streak(Stream* s) MMHAR_REALTIME_HANDOFF;
  void process_round(Shard& sh, std::size_t n_claims) MMHAR_REALTIME_HANDOFF
      MMHAR_DETERMINISTIC;
  void run_inference(Shard& sh) MMHAR_REALTIME_HANDOFF MMHAR_DETERMINISTIC;
  std::size_t publish_results(Shard& sh,
                              std::size_t* expired) MMHAR_REALTIME_HANDOFF;

  // Supervision (cold control plane; none of it runs on the hot path).
  void watchdog_main();
  void supervise_shard(std::size_t shard, std::uint64_t* last_heartbeat,
                       int* strikes);
  void restart_shard(std::size_t shard);

  ServingConfig config_;
  std::size_t window_frames_ = 0;   ///< T, from the model config
  std::size_t num_classes_ = 0;
  bool deadline_enabled_ = false;
  std::chrono::steady_clock::duration deadline_budget_{};
  const float* range_window_ = nullptr;  ///< cached window table (stable)
  ModelRegistry models_;

  std::vector<std::unique_ptr<Shard>> shards_;

  // Sliding DRAI windows indexed by global stream id; each entry is only
  // ever touched by the cycle of the shard its stream is pinned to, so
  // the table needs no locking (single consumer per stream by affinity).
  std::unique_ptr<WindowTable> windows_;

  // Stream registry: the vector is reserved to max_streams up front, so
  // element storage never moves; Stream objects are heap-stable.
  struct Registry;
  std::unique_ptr<Registry> registry_;

  // Watchdog wake-up state + thread. The watchdog is joined before the
  // shard workers in stop(), so restart_shard (watchdog thread) and
  // stop() (owner thread) never touch a shard's std::thread concurrently.
  struct WatchdogState;
  std::unique_ptr<WatchdogState> watchdog_;
  std::thread watchdog_thread_;
  std::atomic<bool> watchdog_running_{false};

  bool started_ = false;  ///< owner-thread state, not shared
};

}  // namespace mmhar::serving
