#include "serving/serving.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "common/check.h"
#include "common/env.h"
#include "common/finite_check.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "dsp/window.h"
#include "serving/affinity.h"

namespace mmhar::serving {

using Clock = std::chrono::steady_clock;

// ---- Internal state records ------------------------------------------------

// One radar stream: a bounded frame ring feeding its affinity shard and a
// bounded result ring feeding poll(). Slot payloads move through a
// free-list / queued-FIFO hand-off: a slot index lives in exactly one of
// {free list, queued ring, a producer's hands, the shard's claim list}
// at any time, so payload buffers are single-writer/single-reader without
// holding the lock across the (large) frame copy.
struct StreamingHarService::Stream {
  Stream(std::size_t depth, std::size_t frame_elems, std::size_t rdepth,
         std::size_t shard_idx, std::size_t model_idx)
      : shard(shard_idx),
        model(model_idx),
        free_list(depth),
        queued(depth),
        slot_seq(depth, 0),
        slot_arrival(depth),
        slot_data(depth, std::vector<dsp::cfloat>(frame_elems)),
        results(rdepth) {
    for (std::size_t i = 0; i < depth; ++i) free_list[i] = i;
    free_count = depth;
  }

  const std::size_t shard;  ///< affinity shard (immutable)
  const std::size_t model;  ///< ModelRegistry id (immutable)

  mutable Mutex mu;
  std::vector<std::size_t> free_list MMHAR_GUARDED_BY(mu);  ///< slot stack
  std::size_t free_count MMHAR_GUARDED_BY(mu) = 0;
  std::vector<std::size_t> queued MMHAR_GUARDED_BY(mu);  ///< slot FIFO ring
  std::size_t qhead MMHAR_GUARDED_BY(mu) = 0;
  std::size_t qcount MMHAR_GUARDED_BY(mu) = 0;
  std::vector<std::uint64_t> slot_seq MMHAR_GUARDED_BY(mu);
  std::vector<Clock::time_point> slot_arrival MMHAR_GUARDED_BY(mu);
  std::uint64_t next_seq MMHAR_GUARDED_BY(mu) = 0;
  std::uint64_t submitted MMHAR_GUARDED_BY(mu) = 0;
  std::uint64_t accepted MMHAR_GUARDED_BY(mu) = 0;
  std::uint64_t dropped MMHAR_GUARDED_BY(mu) = 0;
  std::uint64_t rejected MMHAR_GUARDED_BY(mu) = 0;
  std::uint64_t deadline_dropped MMHAR_GUARDED_BY(mu) = 0;
  std::uint64_t deepest_queue MMHAR_GUARDED_BY(mu) = 0;
  // Payload buffers: published by the mutex acquire/release around the
  // slot-index hand-offs above, never accessed under the lock itself.
  // mmhar-analyze: allow(lock-annotation-coverage)
  std::vector<std::vector<dsp::cfloat>> slot_data;

  mutable Mutex results_mu;
  std::vector<Classification> results MMHAR_GUARDED_BY(results_mu);
  std::size_t rhead MMHAR_GUARDED_BY(results_mu) = 0;
  std::size_t rcount MMHAR_GUARDED_BY(results_mu) = 0;
  std::uint64_t classifications MMHAR_GUARDED_BY(results_mu) = 0;
  std::uint64_t dropped_results MMHAR_GUARDED_BY(results_mu) = 0;
};

// Per-shard wake-up state: `pending` counts frames sitting in the shard's
// stream queues (eventually consistent — producers increment after
// enqueueing, the shard decrements by the number it consumed, so it may
// transiently dip negative or lag reality by an in-flight submit).
struct Sched {
  Mutex mu;
  CondVar cv;
  std::int64_t pending MMHAR_GUARDED_BY(mu) = 0;
  bool stop MMHAR_GUARDED_BY(mu) = false;
};

struct StreamingHarService::Registry {
  mutable Mutex mu;
  std::vector<std::unique_ptr<Stream>> streams MMHAR_GUARDED_BY(mu);
};

// Per-stream sliding window of the last T raw (pre-dB, pre-normalize)
// DRAI frames, as a ring; `next` is the write position and, once filled,
// also the oldest frame. Indexed by global stream id; written only by the
// owning shard's cycle.
struct StreamingHarService::WindowTable {
  struct StreamWindow {
    std::vector<float> drai;
    std::size_t next = 0;
    std::size_t filled = 0;
  };
  std::vector<StreamWindow> w;
};

// One batcher shard: wake-up state, the worker thread, and the cycle
// arenas. Everything outside `sched` and the atomics is touched only by
// whichever single thread runs this shard's cycle (the worker, or the
// owner when pumping manually), so it needs no locking. All buffers are
// sized once in the constructor; the cycle refills them through explicit
// fill counters (n_cycle_streams, n_jobs, the per-round claim count) so
// the steady-state path contains no container-growth call at all — which
// is what lets mmhar_rtcheck prove the zero-allocation contract
// statically instead of sampling it.
struct StreamingHarService::Shard {
  struct Claim {
    Stream* stream = nullptr;
    std::size_t stream_id = 0;  ///< global id (WindowTable index)
    std::size_t slot = 0;
    std::uint64_t seq = 0;
    Clock::time_point arrival;
  };
  struct Job {
    Stream* stream = nullptr;
    std::size_t stream_id = 0;
    std::size_t model = 0;
    std::uint64_t seq = 0;           ///< newest window frame
    Clock::time_point arrival;       ///< newest window frame submit time
  };

  Sched sched;
  std::thread worker;

  // Single-writer shard counters; relaxed atomics so shard_stats can
  // snapshot them while the worker runs.
  std::atomic<std::uint64_t> stat_cycles{0};
  std::atomic<std::uint64_t> stat_frames{0};
  std::atomic<std::uint64_t> stat_classifications{0};
  std::atomic<std::uint64_t> stat_deadline_dropped{0};

  std::vector<Stream*> cycle_streams;    ///< first n_cycle_streams valid
  std::vector<std::size_t> cycle_ids;    ///< matching global stream ids
  std::size_t n_cycle_streams = 0;
  std::vector<Claim> claims;             ///< current round only
  std::vector<dsp::FftManyIo> range_ios;
  std::vector<dsp::FftManyMagIo> angle_ios;
  std::vector<dsp::cfloat> spectra;      ///< per-round spectra arena
  std::vector<Job> jobs;                 ///< whole cycle; first n_jobs valid
  std::size_t n_jobs = 0;
  std::vector<float> net_input;          ///< [jobs x T x R x A]
  std::vector<float> logits;             ///< [jobs x C]
  std::vector<float> model_input;        ///< per-model gather [jobs x T x R x A]
  std::vector<float> model_logits;       ///< per-model logits [jobs x C]
  std::vector<std::size_t> model_rows;   ///< job index per gathered row
  har::InferenceScratch scratch;
  std::size_t rr = 0;                    ///< round-robin fairness offset
};

// ---- Configuration ---------------------------------------------------------

ServingConfig ServingConfig::from_env() {
  ServingConfig cfg;
  cfg.batch_max = static_cast<std::size_t>(
      env_int("MMHAR_SERVING_BATCH", static_cast<long>(cfg.batch_max)));
  cfg.queue_depth = static_cast<std::size_t>(
      env_int("MMHAR_SERVING_QUEUE_DEPTH",
              static_cast<long>(cfg.queue_depth)));
  cfg.num_shards = static_cast<std::size_t>(
      env_int("MMHAR_SERVING_SHARDS", static_cast<long>(cfg.num_shards)));
  cfg.slo_ms = env_int("MMHAR_SERVING_SLO_MS", cfg.slo_ms);
  const std::string policy = env_string("MMHAR_SERVING_DROP_POLICY", "oldest");
  MMHAR_REQUIRE(policy == "oldest" || policy == "newest",
                "MMHAR_SERVING_DROP_POLICY must be 'oldest' or 'newest', got "
                    << policy);
  cfg.drop_policy =
      policy == "newest" ? DropPolicy::kNewest : DropPolicy::kOldest;
  return cfg;
}

// ---- Service ---------------------------------------------------------------

StreamingHarService::StreamingHarService(const ServingConfig& config,
                                         har::HarModel& model)
    : config_(config), models_(model) {
  const har::HarModelConfig& mc = model.config();
  const dsp::HeatmapConfig& hm = config.heatmap;
  MMHAR_REQUIRE(config.max_streams > 0 && config.queue_depth > 0 &&
                    config.batch_max > 0 && config.result_depth > 0,
                "ServingConfig: all capacities must be positive");
  MMHAR_REQUIRE(config.num_shards > 0,
                "ServingConfig: num_shards must be positive");
  MMHAR_REQUIRE(config.slo_ms >= 0,
                "ServingConfig: slo_ms must be non-negative (0 = disabled)");
  MMHAR_REQUIRE(hm.range_bins == mc.height && hm.angle_bins == mc.width,
                "ServingConfig: heatmap dims must match the model ("
                    << mc.height << "x" << mc.width << ")");
  MMHAR_REQUIRE(hm.normalize_per_sequence,
                "ServingConfig: serving windows normalize over the whole "
                "T-frame sequence; per-frame normalization is unsupported");
  MMHAR_REQUIRE(dsp::is_power_of_two(config.num_samples) &&
                    hm.range_bins <= config.num_samples,
                "ServingConfig: num_samples must be a power of two >= "
                "range_bins");
  MMHAR_REQUIRE(dsp::is_power_of_two(hm.angle_bins) &&
                    hm.angle_bins >= config.num_antennas,
                "ServingConfig: angle_bins must be a power of two >= "
                "num_antennas");
  MMHAR_REQUIRE(mc.num_classes <= kMaxServingClasses,
                "ServingConfig: num_classes exceeds kMaxServingClasses");

  window_frames_ = mc.frames;
  num_classes_ = mc.num_classes;
  deadline_enabled_ = config.slo_ms > 0;
  deadline_budget_ = std::chrono::milliseconds(config.slo_ms);
  range_window_ = dsp::cached_window(hm.range_window, config.num_samples).data();
  registry_ = std::make_unique<Registry>();
  {
    MutexLock lk(registry_->mu);
    registry_->streams.reserve(config.max_streams);
  }

  const std::size_t hw = hm.range_bins * hm.angle_bins;
  const std::size_t spectra_elems =
      config.num_chirps * config.num_antennas * hm.range_bins;
  windows_ = std::make_unique<WindowTable>();
  windows_->w.resize(config.max_streams);
  for (WindowTable::StreamWindow& w : windows_->w)
    w.drai.resize(window_frames_ * hw);

  shards_.reserve(config.num_shards);
  for (std::size_t i = 0; i < config.num_shards; ++i) {
    auto sh = std::make_unique<Shard>();
    sh->cycle_streams.resize(config.max_streams, nullptr);
    sh->cycle_ids.resize(config.max_streams, 0);
    sh->claims.resize(config.batch_max);
    sh->range_ios.resize(config.batch_max);
    sh->angle_ios.resize(config.batch_max);
    sh->spectra.resize(config.batch_max * spectra_elems);
    sh->jobs.resize(config.batch_max);
    sh->net_input.resize(config.batch_max * window_frames_ * hw);
    sh->logits.resize(config.batch_max * num_classes_);
    sh->model_input.resize(config.batch_max * window_frames_ * hw);
    sh->model_logits.resize(config.batch_max * num_classes_);
    sh->model_rows.resize(config.batch_max);
    sh->scratch.reserve(models_.plan(0), config.batch_max);
    shards_.push_back(std::move(sh));
  }
}

StreamingHarService::~StreamingHarService() { stop(); }

std::size_t StreamingHarService::add_model(har::HarModel& model) {
  MMHAR_REQUIRE(!started_,
                "add_model: models must be registered before start() — "
                "running shards read the registry lock-free");
  return models_.add(model);
}

std::size_t StreamingHarService::add_stream(std::size_t model_id) {
  MMHAR_REQUIRE(model_id < models_.size(),
                "add_stream: unknown model id " << model_id << " ("
                    << models_.size() << " registered)");
  const std::size_t frame_elems =
      config_.num_chirps * config_.num_antennas * config_.num_samples;
  MutexLock lk(registry_->mu);
  MMHAR_REQUIRE(registry_->streams.size() < config_.max_streams,
                "add_stream: all " << config_.max_streams
                                   << " stream slots are active");
  const std::size_t id = registry_->streams.size();
  const std::size_t shard = shard_for_key(id, config_.num_shards);
  registry_->streams.push_back(std::make_unique<Stream>(
      config_.queue_depth, frame_elems, config_.result_depth, shard,
      model_id));
  return id;
}

StreamingHarService::Stream* StreamingHarService::stream_ptr(
    std::size_t idx) const {
  MutexLock lk(registry_->mu);
  MMHAR_REQUIRE(idx < registry_->streams.size(),
                "unknown stream id " << idx);
  return registry_->streams[idx].get();
}

std::size_t StreamingHarService::shard_of_stream(std::size_t stream) const {
  return stream_ptr(stream)->shard;
}

bool StreamingHarService::submit_frame(std::size_t stream,
                                       const dsp::RadarCube& cube) {
  MMHAR_REQUIRE(cube.num_chirps() == config_.num_chirps &&
                    cube.num_antennas() == config_.num_antennas &&
                    cube.num_samples() == config_.num_samples,
                "submit_frame: cube geometry does not match ServingConfig");
  Stream* s = stream_ptr(stream);
  const Clock::time_point now = Clock::now();

  std::size_t slot = 0;
  bool evicted = false;
  {
    MutexLock lk(s->mu);
    ++s->submitted;
    if (s->free_count > 0) {
      slot = s->free_list[--s->free_count];
    } else if (config_.drop_policy == DropPolicy::kOldest && s->qcount > 0) {
      // Evict the oldest *queued* frame and reuse its slot; claimed
      // (in-flight) frames are never dropped.
      slot = s->queued[s->qhead];
      s->qhead = (s->qhead + 1) % config_.queue_depth;
      --s->qcount;
      ++s->dropped;
      evicted = true;
    } else {
      ++s->rejected;
      return false;
    }
  }

  // Copy the frame outside the lock: the slot index is exclusively ours
  // until we publish it to the queued ring below.
  std::copy(cube.raw().begin(), cube.raw().end(), s->slot_data[slot].begin());

  {
    MutexLock lk(s->mu);
    ++s->accepted;
    s->slot_seq[slot] = s->next_seq++;
    s->slot_arrival[slot] = now;
    s->queued[(s->qhead + s->qcount) % config_.queue_depth] = slot;
    ++s->qcount;
    if (s->qcount > s->deepest_queue) s->deepest_queue = s->qcount;
  }

  // Eviction removed one queued frame and this submit added one, so the
  // pending count only moves on a non-evicting admit. Only the stream's
  // affinity shard is woken — the others have no claim on this frame.
  if (!evicted) {
    Sched& sched = shards_[s->shard]->sched;
    MutexLock lk(sched.mu);
    ++sched.pending;
    sched.cv.notify_one();
  }
  return true;
}

std::size_t StreamingHarService::poll(std::size_t stream,
                                      std::span<Classification> out) {
  Stream* s = stream_ptr(stream);
  MutexLock lk(s->results_mu);
  const std::size_t n = std::min(out.size(), s->rcount);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = s->results[s->rhead];
    s->rhead = (s->rhead + 1) % config_.result_depth;
  }
  s->rcount -= n;
  return n;
}

StreamStats StreamingHarService::stream_stats(std::size_t stream) const {
  Stream* s = stream_ptr(stream);
  StreamStats st;
  {
    MutexLock lk(s->mu);
    st.submitted = s->submitted;
    st.accepted = s->accepted;
    st.dropped_frames = s->dropped;
    st.rejected_frames = s->rejected;
    st.deadline_dropped = s->deadline_dropped;
    st.deepest_queue = s->deepest_queue;
  }
  {
    MutexLock lk(s->results_mu);
    st.classifications = s->classifications;
    st.dropped_results = s->dropped_results;
  }
  return st;
}

ShardStats StreamingHarService::shard_stats(std::size_t shard) const {
  MMHAR_REQUIRE(shard < shards_.size(), "unknown shard " << shard);
  const Shard& sh = *shards_[shard];
  ShardStats st;
  st.cycles = sh.stat_cycles.load(std::memory_order_relaxed);
  st.frames = sh.stat_frames.load(std::memory_order_relaxed);
  st.classifications = sh.stat_classifications.load(std::memory_order_relaxed);
  st.deadline_dropped =
      sh.stat_deadline_dropped.load(std::memory_order_relaxed);
  return st;
}

// Claim at most one live queued frame per stream of this shard
// (round-robin, rotating start so no stream starves), up to `budget`
// total. Frames whose admission deadline has already passed are discarded
// on the way (their count lands in *expired and the per-stream
// deadline_dropped counter) — deadline scheduling replaces FIFO-oldest:
// a shard never spends its cycle on work nobody can use. Claims land in
// sh.claims in per-stream FIFO order.
std::size_t StreamingHarService::claim_round(Shard& sh, std::size_t budget,
                                             std::size_t* expired) {
  *expired = 0;
  const std::size_t n = sh.n_cycle_streams;
  if (n == 0 || budget == 0) return 0;
  const Clock::time_point now =
      deadline_enabled_ ? Clock::now() : Clock::time_point{};
  std::size_t got = 0;
  for (std::size_t k = 0; k < n && got < budget; ++k) {
    const std::size_t idx = (sh.rr + k) % n;
    Stream* s = sh.cycle_streams[idx];
    MutexLock lk(s->mu);
    while (s->qcount > 0) {
      const std::size_t slot = s->queued[s->qhead];
      s->qhead = (s->qhead + 1) % config_.queue_depth;
      --s->qcount;
      if (deadline_enabled_ &&
          now >= s->slot_arrival[slot] + deadline_budget_) {
        s->free_list[s->free_count++] = slot;
        ++s->deadline_dropped;
        ++*expired;
        continue;  // scan on: a younger queued frame may still be live
      }
      sh.claims[got] = {s, sh.cycle_ids[idx], slot, s->slot_seq[slot],
                        s->slot_arrival[slot]};
      ++got;
      break;
    }
  }
  sh.rr = (sh.rr + 1) % n;
  return got;
}

// One pipeline round over the current claim list (at most one frame per
// stream, so a window slot written this round is never part of an
// already-recorded job). Stages are fused across every claimed frame.
void StreamingHarService::process_round(Shard& sh, std::size_t n_claims) {
  const dsp::HeatmapConfig& hm = config_.heatmap;
  const std::size_t hw = hm.range_bins * hm.angle_bins;
  const std::size_t wlen = window_frames_ * hw;
  const std::size_t spectra_elems =
      config_.num_chirps * config_.num_antennas * hm.range_bins;
  MMHAR_CHECK(sh.spectra.size() >= n_claims * spectra_elems);
  dsp::cfloat* const spectra = sh.spectra.data();

  // Stage 1: every claimed frame's windowed Range-FFT in ONE batched
  // call — SIMD lanes run across (chirp, antenna) rows of all frames of
  // all the shard's streams in this round.
  MMHAR_CHECK(sh.range_ios.size() >= n_claims);
  for (std::size_t i = 0; i < n_claims; ++i) {
    const Shard::Claim& cl = sh.claims[i];
    sh.range_ios[i] = {cl.stream->slot_data[cl.slot].data(),
                       spectra + i * spectra_elems};
  }
  dsp::FftManyJob range_job;
  range_job.n = config_.num_samples;
  range_job.in_len = config_.num_samples;
  range_job.window = range_window_;
  range_job.lanes = config_.num_chirps * config_.num_antennas;
  range_job.in_lane_stride = config_.num_samples;
  range_job.in_elem_stride = 1;
  dsp::fft_many_crop_multi(range_job, hm.range_bins,
                           std::span<const dsp::FftManyIo>(
                               sh.range_ios.data(), n_claims),
                           hm.range_bins, 1);
  check_finite(std::span<const dsp::cfloat>(spectra, n_claims * spectra_elems),
               "RangeSpectra", "serving/post-fft");

  // Stage 2: static clutter removal (serial per frame — pool-free).
  if (hm.remove_clutter) {
    for (std::size_t i = 0; i < n_claims; ++i)
      dsp::remove_static_clutter_serial(spectra + i * spectra_elems,
                                        config_.num_chirps,
                                        config_.num_antennas, hm.range_bins);
  }

  // Frame payloads are consumed; hand the slots back to the producers.
  for (std::size_t i = 0; i < n_claims; ++i) {
    const Shard::Claim& cl = sh.claims[i];
    MutexLock lk(cl.stream->mu);
    cl.stream->free_list[cl.stream->free_count++] = cl.slot;
  }

  // Stage 3: every frame's Angle-FFT → raw DRAI in ONE batched call,
  // written straight into its stream's window ring slot.
  const std::size_t round_job_start = sh.n_jobs;
  MMHAR_CHECK(sh.angle_ios.size() >= n_claims &&
              sh.jobs.size() >= sh.n_jobs + n_claims);
  for (std::size_t i = 0; i < n_claims; ++i) {
    const Shard::Claim& cl = sh.claims[i];
    WindowTable::StreamWindow& w = windows_->w[cl.stream_id];
    MMHAR_CHECK(w.drai.size() == wlen && w.next < window_frames_);
    sh.angle_ios[i] = {spectra + i * spectra_elems,
                       w.drai.data() + w.next * hw};
    w.next = (w.next + 1) % window_frames_;
    if (w.filled < window_frames_) ++w.filled;
    if (w.filled == window_frames_)
      sh.jobs[sh.n_jobs++] = {cl.stream, cl.stream_id, cl.stream->model,
                              cl.seq, cl.arrival};
  }
  dsp::FftManyJob angle_job;
  angle_job.n = hm.angle_bins;
  angle_job.in_len = config_.num_antennas;
  angle_job.lanes = hm.range_bins;
  angle_job.in_lane_stride = 1;
  angle_job.in_elem_stride = hm.range_bins;
  angle_job.reps = config_.num_chirps;
  angle_job.in_rep_stride = config_.num_antennas * hm.range_bins;
  dsp::fft_many_mag_accum_multi(angle_job, /*shift=*/true,
                                std::span<const dsp::FftManyMagIo>(
                                    sh.angle_ios.data(), n_claims),
                                hm.angle_bins, 1);

  // Stage 4: gather the windows completed this round into network-input
  // rows, applying the sequence-level dB conversion and min-max
  // normalization exactly as compute_drai_sequence's tail does (to_db
  // then normalize01 over the whole [T, R, A] block).
  MMHAR_CHECK(sh.net_input.size() >= sh.n_jobs * wlen);
  float* const net_input = sh.net_input.data();
  for (std::size_t j = round_job_start; j < sh.n_jobs; ++j) {
    const WindowTable::StreamWindow& w = windows_->w[sh.jobs[j].stream_id];
    float* row = net_input + j * wlen;
    for (std::size_t t = 0; t < window_frames_; ++t) {
      const std::size_t src = (w.next + t) % window_frames_;
      std::copy(w.drai.begin() +
                    static_cast<std::ptrdiff_t>(src * hw),
                w.drai.begin() + static_cast<std::ptrdiff_t>((src + 1) * hw),
                row + t * hw);
    }
    if (hm.log_scale) {
      for (std::size_t i = 0; i < wlen; ++i)
        row[i] = 20.0F * std::log10(std::max(row[i], hm.db_floor));
    }
    if (hm.normalize) {
      const float lo = *std::min_element(row, row + wlen);
      const float hi = *std::max_element(row, row + wlen);
      const float range = hi - lo;
      if (range <= 0.0F) {
        std::fill(row, row + wlen, 0.0F);
      } else {
        const float inv = 1.0F / range;
        for (std::size_t i = 0; i < wlen; ++i) row[i] = (row[i] - lo) * inv;
      }
    }
  }
}

// Cross-stream micro-batched CNN-LSTM forward over every window that
// completed this cycle — one infer_forward per model version with jobs.
// With a single registered model the gather is skipped and the whole
// cycle goes through one call; either way each output row's arithmetic is
// independent of batch composition, so grouping by model cannot change
// any stream's logits.
void StreamingHarService::run_inference(Shard& sh) {
  const dsp::HeatmapConfig& hm = config_.heatmap;
  const std::size_t wlen =
      window_frames_ * hm.range_bins * hm.angle_bins;
  MMHAR_CHECK(sh.logits.size() >= sh.n_jobs * num_classes_);
  if (models_.size() == 1) {
    har::infer_forward(models_.plan(0), sh.scratch, sh.net_input.data(),
                       sh.n_jobs, sh.logits.data());
  } else {
    for (std::size_t m = 0; m < models_.size(); ++m) {
      std::size_t rows = 0;
      for (std::size_t j = 0; j < sh.n_jobs; ++j) {
        if (sh.jobs[j].model != m) continue;
        sh.model_rows[rows] = j;
        std::copy(sh.net_input.begin() + static_cast<std::ptrdiff_t>(j * wlen),
                  sh.net_input.begin() +
                      static_cast<std::ptrdiff_t>((j + 1) * wlen),
                  sh.model_input.begin() +
                      static_cast<std::ptrdiff_t>(rows * wlen));
        ++rows;
      }
      if (rows == 0) continue;
      har::infer_forward(models_.plan(m), sh.scratch, sh.model_input.data(),
                         rows, sh.model_logits.data());
      for (std::size_t r = 0; r < rows; ++r)
        std::copy(sh.model_logits.begin() +
                      static_cast<std::ptrdiff_t>(r * num_classes_),
                  sh.model_logits.begin() +
                      static_cast<std::ptrdiff_t>((r + 1) * num_classes_),
                  sh.logits.begin() + static_cast<std::ptrdiff_t>(
                                          sh.model_rows[r] * num_classes_));
    }
  }
  check_finite(
      std::span<const float>(sh.logits.data(), sh.n_jobs * num_classes_),
      "logits", "serving/post-forward");
}

// Publish the cycle's classifications into their streams' result rings.
// Under deadline scheduling a result that is already past its newest
// frame's deadline is discarded instead of delivered — a late answer is
// useless to the consumer, and delivering it would hide the overload the
// SLO exists to surface. Returns the number actually published.
std::size_t StreamingHarService::publish_results(Shard& sh) {
  const Clock::time_point now = Clock::now();
  std::size_t published = 0;
  for (std::size_t j = 0; j < sh.n_jobs; ++j) {
    const Shard::Job& job = sh.jobs[j];
    Stream* s = job.stream;
    if (deadline_enabled_ && now > job.arrival + deadline_budget_) {
      MutexLock lk(s->mu);
      ++s->deadline_dropped;
      continue;
    }
    MMHAR_CHECK((j + 1) * num_classes_ <= sh.logits.size());
    const float* row = sh.logits.data() + j * num_classes_;
    Classification result;
    result.frame_seq = job.seq;
    result.latency_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                            now - job.arrival)
                            .count();
    std::size_t best = 0;
    for (std::size_t c = 1; c < num_classes_; ++c)
      if (row[c] > row[best]) best = c;
    result.predicted = best;
    std::copy(row, row + num_classes_, result.logits);
    MutexLock lk(s->results_mu);
    if (s->rcount == config_.result_depth) {
      s->rhead = (s->rhead + 1) % config_.result_depth;
      --s->rcount;
      ++s->dropped_results;
    }
    s->results[(s->rhead + s->rcount) % config_.result_depth] = result;
    ++s->rcount;
    ++s->classifications;
    ++published;
  }
  return published;
}

std::size_t StreamingHarService::run_shard_cycle(std::size_t shard) {
  MMHAR_CHECK(shard < shards_.size());
  Shard& sh = *shards_[shard];
  {
    MutexLock lk(registry_->mu);
    const std::size_t n = registry_->streams.size();
    MMHAR_CHECK(sh.cycle_streams.size() >= n);
    sh.n_cycle_streams = 0;
    for (std::size_t i = 0; i < n; ++i) {
      Stream* s = registry_->streams[i].get();
      if (s->shard != shard) continue;
      sh.cycle_streams[sh.n_cycle_streams] = s;
      sh.cycle_ids[sh.n_cycle_streams] = i;
      ++sh.n_cycle_streams;
    }
  }
  sh.n_jobs = 0;

  // Claim until the batch budget is spent; deadline-expired frames count
  // against the budget too (their removal is the cycle's work product as
  // much as a classification is, and the bound keeps a flood of stale
  // frames from pinning the shard in this loop).
  std::size_t claimed = 0;
  std::size_t expired = 0;
  while (claimed + expired < config_.batch_max) {
    std::size_t round_expired = 0;
    const std::size_t got =
        claim_round(sh, config_.batch_max - claimed - expired,
                    &round_expired);
    expired += round_expired;
    if (got == 0 && round_expired == 0) break;
    if (got > 0) process_round(sh, got);
    claimed += got;
  }

  std::size_t published = 0;
  if (sh.n_jobs > 0) {
    run_inference(sh);
    published = publish_results(sh);
  }

  const std::size_t consumed = claimed + expired;
  if (consumed > 0) {
    {
      MutexLock lk(sh.sched.mu);
      sh.sched.pending -= static_cast<std::int64_t>(consumed);
    }
    sh.stat_cycles.fetch_add(1, std::memory_order_relaxed);
    sh.stat_frames.fetch_add(claimed, std::memory_order_relaxed);
    sh.stat_classifications.fetch_add(published, std::memory_order_relaxed);
    sh.stat_deadline_dropped.fetch_add(expired + (sh.n_jobs - published),
                                       std::memory_order_relaxed);
  }
  return consumed;
}

std::size_t StreamingHarService::run_cycle() {
  std::size_t total = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i)
    total += run_shard_cycle(i);
  return total;
}

void StreamingHarService::shard_main(std::size_t shard) {
  Shard& sh = *shards_[shard];
  for (;;) {
    {
      MutexLock lk(sh.sched.mu);
      while (sh.sched.pending <= 0 && !sh.sched.stop)
        sh.sched.cv.wait(sh.sched.mu);
      if (sh.sched.stop) return;
    }
    // A cycle that consumes nothing means a producer is mid-submit (the
    // pending increment lands after the enqueue); yield instead of
    // spinning hot until it does.
    if (run_shard_cycle(shard) == 0) std::this_thread::yield();
  }
}

void StreamingHarService::start() {
  MMHAR_REQUIRE(!started_, "StreamingHarService::start: already running");
  for (std::unique_ptr<Shard>& sh : shards_) {
    MutexLock lk(sh->sched.mu);
    sh->sched.stop = false;
  }
  for (std::size_t i = 0; i < shards_.size(); ++i)
    shards_[i]->worker = std::thread([this, i] { shard_main(i); });
  started_ = true;
}

void StreamingHarService::stop() {
  if (!started_) return;
  for (std::unique_ptr<Shard>& sh : shards_) {
    MutexLock lk(sh->sched.mu);
    sh->sched.stop = true;
    sh->sched.cv.notify_all();
  }
  for (std::unique_ptr<Shard>& sh : shards_) sh->worker.join();
  started_ = false;
}

}  // namespace mmhar::serving
