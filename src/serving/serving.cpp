#include "serving/serving.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/env.h"
#include "common/finite_check.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "dsp/window.h"

namespace mmhar::serving {

using Clock = std::chrono::steady_clock;

// ---- Internal state records ------------------------------------------------

// One radar stream: a bounded frame ring feeding the batcher and a
// bounded result ring feeding poll(). Slot payloads move through a
// free-list / queued-FIFO hand-off: a slot index lives in exactly one of
// {free list, queued ring, a producer's hands, the batcher's claim list}
// at any time, so payload buffers are single-writer/single-reader without
// holding the lock across the (large) frame copy.
struct StreamingHarService::Stream {
  Stream(std::size_t depth, std::size_t frame_elems, std::size_t rdepth)
      : free_list(depth),
        queued(depth),
        slot_seq(depth, 0),
        slot_arrival(depth),
        slot_data(depth, std::vector<dsp::cfloat>(frame_elems)),
        results(rdepth) {
    for (std::size_t i = 0; i < depth; ++i) free_list[i] = i;
    free_count = depth;
  }

  mutable Mutex mu;
  std::vector<std::size_t> free_list MMHAR_GUARDED_BY(mu);  ///< slot stack
  std::size_t free_count MMHAR_GUARDED_BY(mu) = 0;
  std::vector<std::size_t> queued MMHAR_GUARDED_BY(mu);  ///< slot FIFO ring
  std::size_t qhead MMHAR_GUARDED_BY(mu) = 0;
  std::size_t qcount MMHAR_GUARDED_BY(mu) = 0;
  std::vector<std::uint64_t> slot_seq MMHAR_GUARDED_BY(mu);
  std::vector<Clock::time_point> slot_arrival MMHAR_GUARDED_BY(mu);
  std::uint64_t next_seq MMHAR_GUARDED_BY(mu) = 0;
  std::uint64_t submitted MMHAR_GUARDED_BY(mu) = 0;
  std::uint64_t accepted MMHAR_GUARDED_BY(mu) = 0;
  std::uint64_t dropped MMHAR_GUARDED_BY(mu) = 0;
  std::uint64_t rejected MMHAR_GUARDED_BY(mu) = 0;
  // Payload buffers: published by the mutex acquire/release around the
  // slot-index hand-offs above, never accessed under the lock itself.
  // mmhar-analyze: allow(lock-annotation-coverage)
  std::vector<std::vector<dsp::cfloat>> slot_data;

  mutable Mutex results_mu;
  std::vector<Classification> results MMHAR_GUARDED_BY(results_mu);
  std::size_t rhead MMHAR_GUARDED_BY(results_mu) = 0;
  std::size_t rcount MMHAR_GUARDED_BY(results_mu) = 0;
  std::uint64_t classifications MMHAR_GUARDED_BY(results_mu) = 0;
  std::uint64_t dropped_results MMHAR_GUARDED_BY(results_mu) = 0;
};

// Batcher wake-up state: `pending` counts frames sitting in stream queues
// (eventually consistent — producers increment after enqueueing, the
// batcher decrements by the number it claimed, so it may transiently dip
// negative or lag reality by an in-flight submit).
struct StreamingHarService::Sched {
  Mutex mu;
  CondVar cv;
  std::int64_t pending MMHAR_GUARDED_BY(mu) = 0;
  bool stop MMHAR_GUARDED_BY(mu) = false;
};

struct StreamingHarService::Registry {
  mutable Mutex mu;
  std::vector<std::unique_ptr<Stream>> streams MMHAR_GUARDED_BY(mu);
};

// Everything below is touched only by whichever single thread runs
// run_cycle (the batcher thread, or the owner when pumping manually), so
// it needs no locking. All buffers are sized once in the constructor; the
// cycle refills them through explicit fill counters (n_cycle_streams,
// n_jobs, the per-round claim count) so the steady-state path contains no
// container-growth call at all — which is what lets mmhar_rtcheck prove
// the zero-allocation contract statically instead of sampling it.
struct StreamingHarService::BatcherState {
  struct Claim {
    Stream* stream = nullptr;
    std::size_t stream_id = 0;
    std::size_t slot = 0;
    std::uint64_t seq = 0;
    Clock::time_point arrival;
  };
  // Per-stream sliding window of the last T raw (pre-dB, pre-normalize)
  // DRAI frames, as a ring; `next` is the write position and, once
  // filled, also the oldest frame.
  struct StreamWindow {
    std::vector<float> drai;
    std::size_t next = 0;
    std::size_t filled = 0;
  };
  struct Job {
    std::size_t stream_id = 0;
    std::uint64_t seq = 0;           ///< newest window frame
    Clock::time_point arrival;       ///< newest window frame submit time
  };

  std::vector<Stream*> cycle_streams;    ///< first n_cycle_streams valid
  std::size_t n_cycle_streams = 0;
  std::vector<Claim> claims;             ///< current round only
  std::vector<dsp::FftManyIo> range_ios;
  std::vector<dsp::FftManyMagIo> angle_ios;
  std::vector<dsp::cfloat> spectra;      ///< per-round spectra arena
  std::vector<StreamWindow> windows;     ///< indexed by stream id
  std::vector<Job> jobs;                 ///< whole cycle; first n_jobs valid
  std::size_t n_jobs = 0;
  std::vector<float> net_input;          ///< [jobs x T x R x A]
  std::vector<float> logits;             ///< [jobs x C]
  har::InferenceScratch scratch;
  std::size_t rr = 0;                    ///< round-robin fairness offset
};

// ---- Configuration ---------------------------------------------------------

ServingConfig ServingConfig::from_env() {
  ServingConfig cfg;
  cfg.batch_max = static_cast<std::size_t>(
      env_int("MMHAR_SERVING_BATCH", static_cast<long>(cfg.batch_max)));
  cfg.queue_depth = static_cast<std::size_t>(
      env_int("MMHAR_SERVING_QUEUE_DEPTH",
              static_cast<long>(cfg.queue_depth)));
  const std::string policy = env_string("MMHAR_SERVING_DROP_POLICY", "oldest");
  MMHAR_REQUIRE(policy == "oldest" || policy == "newest",
                "MMHAR_SERVING_DROP_POLICY must be 'oldest' or 'newest', got "
                    << policy);
  cfg.drop_policy =
      policy == "newest" ? DropPolicy::kNewest : DropPolicy::kOldest;
  return cfg;
}

// ---- Service ---------------------------------------------------------------

StreamingHarService::StreamingHarService(const ServingConfig& config,
                                         har::HarModel& model)
    : config_(config) {
  const har::HarModelConfig& mc = model.config();
  const dsp::HeatmapConfig& hm = config.heatmap;
  MMHAR_REQUIRE(config.max_streams > 0 && config.queue_depth > 0 &&
                    config.batch_max > 0 && config.result_depth > 0,
                "ServingConfig: all capacities must be positive");
  MMHAR_REQUIRE(hm.range_bins == mc.height && hm.angle_bins == mc.width,
                "ServingConfig: heatmap dims must match the model ("
                    << mc.height << "x" << mc.width << ")");
  MMHAR_REQUIRE(hm.normalize_per_sequence,
                "ServingConfig: serving windows normalize over the whole "
                "T-frame sequence; per-frame normalization is unsupported");
  MMHAR_REQUIRE(dsp::is_power_of_two(config.num_samples) &&
                    hm.range_bins <= config.num_samples,
                "ServingConfig: num_samples must be a power of two >= "
                "range_bins");
  MMHAR_REQUIRE(dsp::is_power_of_two(hm.angle_bins) &&
                    hm.angle_bins >= config.num_antennas,
                "ServingConfig: angle_bins must be a power of two >= "
                "num_antennas");
  MMHAR_REQUIRE(mc.num_classes <= kMaxServingClasses,
                "ServingConfig: num_classes exceeds kMaxServingClasses");

  window_frames_ = mc.frames;
  num_classes_ = mc.num_classes;
  range_window_ = dsp::cached_window(hm.range_window, config.num_samples).data();
  plan_ = har::build_inference_plan(model);
  sched_ = std::make_unique<Sched>();
  registry_ = std::make_unique<Registry>();
  {
    MutexLock lk(registry_->mu);
    registry_->streams.reserve(config.max_streams);
  }

  const std::size_t hw = hm.range_bins * hm.angle_bins;
  const std::size_t spectra_elems =
      config.num_chirps * config.num_antennas * hm.range_bins;
  batch_ = std::make_unique<BatcherState>();
  batch_->cycle_streams.resize(config.max_streams, nullptr);
  batch_->claims.resize(config.batch_max);
  batch_->range_ios.resize(config.batch_max);
  batch_->angle_ios.resize(config.batch_max);
  batch_->spectra.resize(config.batch_max * spectra_elems);
  batch_->windows.resize(config.max_streams);
  for (BatcherState::StreamWindow& w : batch_->windows)
    w.drai.resize(window_frames_ * hw);
  batch_->jobs.resize(config.batch_max);
  batch_->net_input.resize(config.batch_max * window_frames_ * hw);
  batch_->logits.resize(config.batch_max * num_classes_);
  batch_->scratch.reserve(plan_, config.batch_max);
}

StreamingHarService::~StreamingHarService() { stop(); }

std::size_t StreamingHarService::add_stream() {
  const std::size_t frame_elems =
      config_.num_chirps * config_.num_antennas * config_.num_samples;
  MutexLock lk(registry_->mu);
  MMHAR_REQUIRE(registry_->streams.size() < config_.max_streams,
                "add_stream: all " << config_.max_streams
                                   << " stream slots are active");
  registry_->streams.push_back(std::make_unique<Stream>(
      config_.queue_depth, frame_elems, config_.result_depth));
  return registry_->streams.size() - 1;
}

StreamingHarService::Stream* StreamingHarService::stream_ptr(
    std::size_t idx) const {
  MutexLock lk(registry_->mu);
  MMHAR_REQUIRE(idx < registry_->streams.size(),
                "unknown stream id " << idx);
  return registry_->streams[idx].get();
}

bool StreamingHarService::submit_frame(std::size_t stream,
                                       const dsp::RadarCube& cube) {
  MMHAR_REQUIRE(cube.num_chirps() == config_.num_chirps &&
                    cube.num_antennas() == config_.num_antennas &&
                    cube.num_samples() == config_.num_samples,
                "submit_frame: cube geometry does not match ServingConfig");
  Stream* s = stream_ptr(stream);
  const Clock::time_point now = Clock::now();

  std::size_t slot = 0;
  bool evicted = false;
  {
    MutexLock lk(s->mu);
    ++s->submitted;
    if (s->free_count > 0) {
      slot = s->free_list[--s->free_count];
    } else if (config_.drop_policy == DropPolicy::kOldest && s->qcount > 0) {
      // Evict the oldest *queued* frame and reuse its slot; claimed
      // (in-flight) frames are never dropped.
      slot = s->queued[s->qhead];
      s->qhead = (s->qhead + 1) % config_.queue_depth;
      --s->qcount;
      ++s->dropped;
      evicted = true;
    } else {
      ++s->rejected;
      return false;
    }
  }

  // Copy the frame outside the lock: the slot index is exclusively ours
  // until we publish it to the queued ring below.
  std::copy(cube.raw().begin(), cube.raw().end(), s->slot_data[slot].begin());

  {
    MutexLock lk(s->mu);
    ++s->accepted;
    s->slot_seq[slot] = s->next_seq++;
    s->slot_arrival[slot] = now;
    s->queued[(s->qhead + s->qcount) % config_.queue_depth] = slot;
    ++s->qcount;
  }

  // Eviction removed one queued frame and this submit added one, so the
  // pending count only moves on a non-evicting admit.
  if (!evicted) {
    MutexLock lk(sched_->mu);
    ++sched_->pending;
    sched_->cv.notify_one();
  }
  return true;
}

std::size_t StreamingHarService::poll(std::size_t stream,
                                      std::span<Classification> out) {
  Stream* s = stream_ptr(stream);
  MutexLock lk(s->results_mu);
  const std::size_t n = std::min(out.size(), s->rcount);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = s->results[s->rhead];
    s->rhead = (s->rhead + 1) % config_.result_depth;
  }
  s->rcount -= n;
  return n;
}

StreamStats StreamingHarService::stream_stats(std::size_t stream) const {
  Stream* s = stream_ptr(stream);
  StreamStats st;
  {
    MutexLock lk(s->mu);
    st.submitted = s->submitted;
    st.accepted = s->accepted;
    st.dropped_frames = s->dropped;
    st.rejected_frames = s->rejected;
  }
  {
    MutexLock lk(s->results_mu);
    st.classifications = s->classifications;
    st.dropped_results = s->dropped_results;
  }
  return st;
}

// Claim at most one queued frame per stream (round-robin, rotating start
// so no stream starves), up to `budget` total. Claims land in
// batch_->claims in per-stream FIFO order.
std::size_t StreamingHarService::claim_round(std::size_t budget) {
  BatcherState& bs = *batch_;
  const std::size_t n = bs.n_cycle_streams;
  if (n == 0) return 0;
  std::size_t got = 0;
  for (std::size_t k = 0; k < n && got < budget; ++k) {
    const std::size_t sid = (bs.rr + k) % n;
    Stream* s = bs.cycle_streams[sid];
    MutexLock lk(s->mu);
    if (s->qcount == 0) continue;
    const std::size_t slot = s->queued[s->qhead];
    s->qhead = (s->qhead + 1) % config_.queue_depth;
    --s->qcount;
    bs.claims[got] = {s, sid, slot, s->slot_seq[slot], s->slot_arrival[slot]};
    ++got;
  }
  bs.rr = (bs.rr + 1) % n;
  return got;
}

// One pipeline round over the current claim list (at most one frame per
// stream, so a window slot written this round is never part of an
// already-recorded job). Stages are fused across every claimed frame.
void StreamingHarService::process_round(std::size_t n_claims) {
  BatcherState& bs = *batch_;
  const dsp::HeatmapConfig& hm = config_.heatmap;
  const std::size_t hw = hm.range_bins * hm.angle_bins;
  const std::size_t wlen = window_frames_ * hw;
  const std::size_t spectra_elems =
      config_.num_chirps * config_.num_antennas * hm.range_bins;
  MMHAR_CHECK(bs.spectra.size() >= n_claims * spectra_elems);
  dsp::cfloat* const spectra = bs.spectra.data();

  // Stage 1: every claimed frame's windowed Range-FFT in ONE batched
  // call — SIMD lanes run across (chirp, antenna) rows of all frames of
  // all streams in this round.
  MMHAR_CHECK(bs.range_ios.size() >= n_claims);
  for (std::size_t i = 0; i < n_claims; ++i) {
    const BatcherState::Claim& cl = bs.claims[i];
    bs.range_ios[i] = {cl.stream->slot_data[cl.slot].data(),
                       spectra + i * spectra_elems};
  }
  dsp::FftManyJob range_job;
  range_job.n = config_.num_samples;
  range_job.in_len = config_.num_samples;
  range_job.window = range_window_;
  range_job.lanes = config_.num_chirps * config_.num_antennas;
  range_job.in_lane_stride = config_.num_samples;
  range_job.in_elem_stride = 1;
  dsp::fft_many_crop_multi(range_job, hm.range_bins,
                           std::span<const dsp::FftManyIo>(
                               bs.range_ios.data(), n_claims),
                           hm.range_bins, 1);
  check_finite(std::span<const dsp::cfloat>(spectra, n_claims * spectra_elems),
               "RangeSpectra", "serving/post-fft");

  // Stage 2: static clutter removal (serial per frame — pool-free).
  if (hm.remove_clutter) {
    for (std::size_t i = 0; i < n_claims; ++i)
      dsp::remove_static_clutter_serial(spectra + i * spectra_elems,
                                        config_.num_chirps,
                                        config_.num_antennas, hm.range_bins);
  }

  // Frame payloads are consumed; hand the slots back to the producers.
  for (std::size_t i = 0; i < n_claims; ++i) {
    const BatcherState::Claim& cl = bs.claims[i];
    MutexLock lk(cl.stream->mu);
    cl.stream->free_list[cl.stream->free_count++] = cl.slot;
  }

  // Stage 3: every frame's Angle-FFT → raw DRAI in ONE batched call,
  // written straight into its stream's window ring slot.
  const std::size_t round_job_start = bs.n_jobs;
  MMHAR_CHECK(bs.angle_ios.size() >= n_claims &&
              bs.jobs.size() >= bs.n_jobs + n_claims);
  for (std::size_t i = 0; i < n_claims; ++i) {
    const BatcherState::Claim& cl = bs.claims[i];
    BatcherState::StreamWindow& w = bs.windows[cl.stream_id];
    MMHAR_CHECK(w.drai.size() == wlen && w.next < window_frames_);
    bs.angle_ios[i] = {spectra + i * spectra_elems,
                       w.drai.data() + w.next * hw};
    w.next = (w.next + 1) % window_frames_;
    if (w.filled < window_frames_) ++w.filled;
    if (w.filled == window_frames_)
      bs.jobs[bs.n_jobs++] = {cl.stream_id, cl.seq, cl.arrival};
  }
  dsp::FftManyJob angle_job;
  angle_job.n = hm.angle_bins;
  angle_job.in_len = config_.num_antennas;
  angle_job.lanes = hm.range_bins;
  angle_job.in_lane_stride = 1;
  angle_job.in_elem_stride = hm.range_bins;
  angle_job.reps = config_.num_chirps;
  angle_job.in_rep_stride = config_.num_antennas * hm.range_bins;
  dsp::fft_many_mag_accum_multi(angle_job, /*shift=*/true,
                                std::span<const dsp::FftManyMagIo>(
                                    bs.angle_ios.data(), n_claims),
                                hm.angle_bins, 1);

  // Stage 4: gather the windows completed this round into network-input
  // rows, applying the sequence-level dB conversion and min-max
  // normalization exactly as compute_drai_sequence's tail does (to_db
  // then normalize01 over the whole [T, R, A] block).
  MMHAR_CHECK(bs.net_input.size() >= bs.n_jobs * wlen);
  float* const net_input = bs.net_input.data();
  for (std::size_t j = round_job_start; j < bs.n_jobs; ++j) {
    const BatcherState::StreamWindow& w = bs.windows[bs.jobs[j].stream_id];
    float* row = net_input + j * wlen;
    for (std::size_t t = 0; t < window_frames_; ++t) {
      const std::size_t src = (w.next + t) % window_frames_;
      std::copy(w.drai.begin() +
                    static_cast<std::ptrdiff_t>(src * hw),
                w.drai.begin() + static_cast<std::ptrdiff_t>((src + 1) * hw),
                row + t * hw);
    }
    if (hm.log_scale) {
      for (std::size_t i = 0; i < wlen; ++i)
        row[i] = 20.0F * std::log10(std::max(row[i], hm.db_floor));
    }
    if (hm.normalize) {
      const float lo = *std::min_element(row, row + wlen);
      const float hi = *std::max_element(row, row + wlen);
      const float range = hi - lo;
      if (range <= 0.0F) {
        std::fill(row, row + wlen, 0.0F);
      } else {
        const float inv = 1.0F / range;
        for (std::size_t i = 0; i < wlen; ++i) row[i] = (row[i] - lo) * inv;
      }
    }
  }
}

std::size_t StreamingHarService::run_cycle() {
  BatcherState& bs = *batch_;
  {
    MutexLock lk(registry_->mu);
    MMHAR_CHECK(bs.cycle_streams.size() >= registry_->streams.size());
    bs.n_cycle_streams = registry_->streams.size();
    for (std::size_t i = 0; i < bs.n_cycle_streams; ++i)
      bs.cycle_streams[i] = registry_->streams[i].get();
  }
  bs.n_jobs = 0;

  std::size_t total = 0;
  while (total < config_.batch_max) {
    const std::size_t got = claim_round(config_.batch_max - total);
    if (got == 0) break;
    process_round(got);
    total += got;
  }

  // Cross-stream micro-batched CNN-LSTM forward over every window that
  // completed this cycle, then publish per-stream results.
  if (bs.n_jobs > 0) {
    MMHAR_CHECK(bs.logits.size() >= bs.n_jobs * num_classes_);
    float* const logits = bs.logits.data();
    har::infer_forward(plan_, bs.scratch, bs.net_input.data(),
                       bs.n_jobs, logits);
    check_finite(std::span<const float>(logits, bs.n_jobs * num_classes_),
                 "logits", "serving/post-forward");
    const Clock::time_point now = Clock::now();
    for (std::size_t j = 0; j < bs.n_jobs; ++j) {
      const BatcherState::Job& job = bs.jobs[j];
      const float* row = logits + j * num_classes_;
      Classification result;
      result.frame_seq = job.seq;
      result.latency_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                              now - job.arrival)
                              .count();
      std::size_t best = 0;
      for (std::size_t c = 1; c < num_classes_; ++c)
        if (row[c] > row[best]) best = c;
      result.predicted = best;
      std::copy(row, row + num_classes_, result.logits);
      Stream* s = bs.cycle_streams[job.stream_id];
      MutexLock lk(s->results_mu);
      if (s->rcount == config_.result_depth) {
        s->rhead = (s->rhead + 1) % config_.result_depth;
        --s->rcount;
        ++s->dropped_results;
      }
      s->results[(s->rhead + s->rcount) % config_.result_depth] = result;
      ++s->rcount;
      ++s->classifications;
    }
  }

  if (total > 0) {
    MutexLock lk(sched_->mu);
    sched_->pending -= static_cast<std::int64_t>(total);
  }
  return total;
}

void StreamingHarService::batcher_main() {
  for (;;) {
    {
      MutexLock lk(sched_->mu);
      while (sched_->pending <= 0 && !sched_->stop) sched_->cv.wait(sched_->mu);
      if (sched_->stop) return;
    }
    // A cycle that claims nothing means a producer is mid-submit (the
    // pending increment lands after the enqueue); yield instead of
    // spinning hot until it does.
    if (run_cycle() == 0) std::this_thread::yield();
  }
}

void StreamingHarService::start() {
  MMHAR_REQUIRE(!started_, "StreamingHarService::start: already running");
  {
    MutexLock lk(sched_->mu);
    sched_->stop = false;
  }
  batcher_thread_ = std::thread([this] { batcher_main(); });
  started_ = true;
}

void StreamingHarService::stop() {
  if (!started_) return;
  {
    MutexLock lk(sched_->mu);
    sched_->stop = true;
    sched_->cv.notify_all();
  }
  batcher_thread_.join();
  started_ = false;
}

}  // namespace mmhar::serving
