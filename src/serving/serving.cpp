#include "serving/serving.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/env.h"
#include "common/fault_injection.h"
#include "common/finite_check.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "dsp/window.h"
#include "serving/affinity.h"

namespace mmhar::serving {

using Clock = std::chrono::steady_clock;

namespace {

// Idle-side self-healing: a worker whose condvar wait times out runs a
// probe cycle, so a lost wake-up or a pending count left stale by a
// crashed predecessor costs at most this much latency, never starvation.
constexpr std::chrono::milliseconds kIdlePoll{100};

// Consecutive zero-consume cycles before a worker clamps a stale positive
// pending count back to zero (a genuine mid-submit race clears in one or
// two cycles; a crash that leaked claimed frames never clears on its own).
constexpr int kZeroConsumeClamp = 64;

// Heartbeat-frozen-with-work-pending observations before the watchdog
// declares a shard stalled and restarts it.
constexpr int kStallStrikes = 3;

}  // namespace

// ---- Internal state records ------------------------------------------------

// One radar stream: a bounded frame ring feeding its affinity shard and a
// bounded result ring feeding poll(). Slot payloads move through a
// free-list / queued-FIFO hand-off: a slot index lives in exactly one of
// {free list, queued ring, a producer's hands, the shard's claim list}
// at any time, so payload buffers are single-writer/single-reader without
// holding the lock across the (large) frame copy.
struct StreamingHarService::Stream {
  Stream(std::size_t depth, std::size_t frame_elems, std::size_t rdepth,
         std::size_t shard_idx, std::size_t model_idx)
      : shard(shard_idx),
        model(model_idx),
        free_list(depth),
        queued(depth),
        slot_seq(depth, 0),
        slot_arrival(depth),
        slot_data(depth, std::vector<dsp::cfloat>(frame_elems)),
        results(rdepth) {
    for (std::size_t i = 0; i < depth; ++i) free_list[i] = i;
    free_count = depth;
  }

  const std::size_t shard;  ///< affinity shard (immutable)
  const std::size_t model;  ///< ModelRegistry id (immutable)

  mutable Mutex mu;
  std::vector<std::size_t> free_list MMHAR_GUARDED_BY(mu);  ///< slot stack
  std::size_t free_count MMHAR_GUARDED_BY(mu) = 0;
  std::vector<std::size_t> queued MMHAR_GUARDED_BY(mu);  ///< slot FIFO ring
  std::size_t qhead MMHAR_GUARDED_BY(mu) = 0;
  std::size_t qcount MMHAR_GUARDED_BY(mu) = 0;
  std::vector<std::uint64_t> slot_seq MMHAR_GUARDED_BY(mu);
  std::vector<Clock::time_point> slot_arrival MMHAR_GUARDED_BY(mu);
  std::uint64_t next_seq MMHAR_GUARDED_BY(mu) = 0;
  std::uint64_t submitted MMHAR_GUARDED_BY(mu) = 0;
  std::uint64_t accepted MMHAR_GUARDED_BY(mu) = 0;
  std::uint64_t dropped MMHAR_GUARDED_BY(mu) = 0;
  std::uint64_t rejected MMHAR_GUARDED_BY(mu) = 0;
  std::uint64_t deadline_dropped MMHAR_GUARDED_BY(mu) = 0;
  std::uint64_t deepest_queue MMHAR_GUARDED_BY(mu) = 0;
  // Fault containment (DESIGN.md §6c): quarantine/error totals, the
  // consecutive-fault streak driving suspension, and the suspension
  // state itself. All mutated by the owning shard's cycle (plus read by
  // stream_stats/health), under the same mutex as the ring hand-off —
  // the hot path pays no extra lock for them.
  std::uint64_t quarantined MMHAR_GUARDED_BY(mu) = 0;
  std::uint64_t errors MMHAR_GUARDED_BY(mu) = 0;
  std::uint64_t suspended_dropped MMHAR_GUARDED_BY(mu) = 0;
  std::uint64_t suspensions MMHAR_GUARDED_BY(mu) = 0;
  std::size_t consecutive_faults MMHAR_GUARDED_BY(mu) = 0;
  bool suspended MMHAR_GUARDED_BY(mu) = false;
  // Payload buffers: published by the mutex acquire/release around the
  // slot-index hand-offs above, never accessed under the lock itself.
  // mmhar-analyze: allow(lock-annotation-coverage)
  std::vector<std::vector<dsp::cfloat>> slot_data;

  mutable Mutex results_mu;
  std::vector<Classification> results MMHAR_GUARDED_BY(results_mu);
  std::size_t rhead MMHAR_GUARDED_BY(results_mu) = 0;
  std::size_t rcount MMHAR_GUARDED_BY(results_mu) = 0;
  std::uint64_t classifications MMHAR_GUARDED_BY(results_mu) = 0;
  std::uint64_t dropped_results MMHAR_GUARDED_BY(results_mu) = 0;
};

// Per-shard wake-up state: `pending` counts frames sitting in the shard's
// stream queues (eventually consistent — producers increment after
// enqueueing, the shard decrements by the number it consumed, so it may
// transiently dip negative or lag reality by an in-flight submit).
struct Sched {
  Mutex mu;
  CondVar cv;
  std::int64_t pending MMHAR_GUARDED_BY(mu) = 0;
  bool stop MMHAR_GUARDED_BY(mu) = false;
};

struct StreamingHarService::Registry {
  mutable Mutex mu;
  std::vector<std::unique_ptr<Stream>> streams MMHAR_GUARDED_BY(mu);
};

// Per-stream sliding window of the last T raw (pre-dB, pre-normalize)
// DRAI frames, as a ring; `next` is the write position and, once filled,
// also the oldest frame. Indexed by global stream id; written only by the
// owning shard's cycle.
struct StreamingHarService::WindowTable {
  struct StreamWindow {
    std::vector<float> drai;
    std::size_t next = 0;
    std::size_t filled = 0;
  };
  std::vector<StreamWindow> w;
};

// One batcher shard: wake-up state, the worker thread, and the cycle
// arenas. Everything outside `sched` and the atomics is touched only by
// whichever single thread runs this shard's cycle (the worker, or the
// owner when pumping manually), so it needs no locking. All buffers are
// sized once in the constructor; the cycle refills them through explicit
// fill counters (n_cycle_streams, n_jobs, the per-round claim count) so
// the steady-state path contains no container-growth call at all — which
// is what lets mmhar_rtcheck prove the zero-allocation contract
// statically instead of sampling it.
struct StreamingHarService::Shard {
  struct Claim {
    Stream* stream = nullptr;
    std::size_t stream_id = 0;  ///< global id (WindowTable index)
    std::size_t slot = 0;
    std::uint64_t seq = 0;
    Clock::time_point arrival;
  };
  struct Job {
    Stream* stream = nullptr;
    std::size_t stream_id = 0;
    std::size_t model = 0;
    std::uint64_t seq = 0;           ///< newest window frame
    Clock::time_point arrival;       ///< newest window frame submit time
  };

  Sched sched;
  std::thread worker;

  // Single-writer shard counters; relaxed atomics so shard_stats can
  // snapshot them while the worker runs.
  std::atomic<std::uint64_t> stat_cycles{0};
  std::atomic<std::uint64_t> stat_frames{0};
  std::atomic<std::uint64_t> stat_classifications{0};
  std::atomic<std::uint64_t> stat_deadline_dropped{0};
  std::atomic<std::uint64_t> stat_faults{0};

  // Supervision state. heartbeat is bumped by the worker once per
  // wake-up; the watchdog compares epochs across its cadence. crashed is
  // set (release) by a worker that caught an escaped exception and
  // parked itself; stalled is a watchdog-owned diagnostic flag.
  // stat_restarts counts supervised restarts (watchdog-written).
  std::atomic<std::uint64_t> heartbeat{0};
  std::atomic<bool> crashed{false};
  std::atomic<bool> stalled{false};
  std::atomic<std::uint64_t> stat_restarts{0};

  std::vector<Stream*> cycle_streams;    ///< first n_cycle_streams valid
  std::vector<std::size_t> cycle_ids;    ///< matching global stream ids
  std::size_t n_cycle_streams = 0;
  std::vector<Claim> claims;             ///< current round only
  std::vector<dsp::FftManyIo> range_ios;
  std::vector<dsp::FftManyMagIo> angle_ios;
  std::vector<dsp::cfloat> spectra;      ///< per-round spectra arena
  std::vector<Job> jobs;                 ///< whole cycle; first n_jobs valid
  std::size_t n_jobs = 0;
  std::vector<float> net_input;          ///< [jobs x T x R x A]
  std::vector<float> logits;             ///< [jobs x C]
  std::vector<float> model_input;        ///< per-model gather [jobs x T x R x A]
  std::vector<float> model_logits;       ///< per-model logits [jobs x C]
  std::vector<std::size_t> model_rows;   ///< job index per gathered row
  std::vector<std::uint8_t> claim_dead;  ///< per-claim containment marks
  std::vector<std::uint8_t> job_dead;    ///< per-job containment marks
  har::InferenceScratch scratch;
  std::size_t rr = 0;                    ///< round-robin fairness offset
};

// Watchdog wake-up state: a plain stop/notify pair; the cadence comes
// from CondVar::wait_for so stop() never waits out a full period.
struct StreamingHarService::WatchdogState {
  Mutex mu;
  CondVar cv;
  bool stop MMHAR_GUARDED_BY(mu) = false;
};

// ---- Configuration ---------------------------------------------------------

ServingConfig ServingConfig::from_env() {
  ServingConfig cfg;
  cfg.batch_max = static_cast<std::size_t>(
      env_int("MMHAR_SERVING_BATCH", static_cast<long>(cfg.batch_max)));
  cfg.queue_depth = static_cast<std::size_t>(
      env_int("MMHAR_SERVING_QUEUE_DEPTH",
              static_cast<long>(cfg.queue_depth)));
  cfg.num_shards = static_cast<std::size_t>(
      env_int("MMHAR_SERVING_SHARDS", static_cast<long>(cfg.num_shards)));
  cfg.slo_ms = env_int("MMHAR_SERVING_SLO_MS", cfg.slo_ms);
  cfg.max_stream_faults = static_cast<std::size_t>(
      env_int("MMHAR_SERVING_MAX_STREAM_FAULTS",
              static_cast<long>(cfg.max_stream_faults)));
  cfg.watchdog_ms = env_int("MMHAR_SERVING_WATCHDOG_MS", cfg.watchdog_ms);
  const std::string policy = env_string("MMHAR_SERVING_DROP_POLICY", "oldest");
  MMHAR_REQUIRE(policy == "oldest" || policy == "newest",
                "MMHAR_SERVING_DROP_POLICY must be 'oldest' or 'newest', got "
                    << policy);
  cfg.drop_policy =
      policy == "newest" ? DropPolicy::kNewest : DropPolicy::kOldest;
  return cfg;
}

// ---- Service ---------------------------------------------------------------

StreamingHarService::StreamingHarService(const ServingConfig& config,
                                         har::HarModel& model)
    : config_(config), models_(model) {
  const har::HarModelConfig& mc = model.config();
  const dsp::HeatmapConfig& hm = config.heatmap;
  MMHAR_REQUIRE(config.max_streams > 0 && config.queue_depth > 0 &&
                    config.batch_max > 0 && config.result_depth > 0,
                "ServingConfig: all capacities must be positive");
  MMHAR_REQUIRE(config.num_shards > 0,
                "ServingConfig: num_shards must be positive");
  MMHAR_REQUIRE(config.slo_ms >= 0,
                "ServingConfig: slo_ms must be non-negative (0 = disabled)");
  MMHAR_REQUIRE(config.watchdog_ms >= 0,
                "ServingConfig: watchdog_ms must be non-negative "
                "(0 = unsupervised)");
  MMHAR_REQUIRE(hm.range_bins == mc.height && hm.angle_bins == mc.width,
                "ServingConfig: heatmap dims must match the model ("
                    << mc.height << "x" << mc.width << ")");
  MMHAR_REQUIRE(hm.normalize_per_sequence,
                "ServingConfig: serving windows normalize over the whole "
                "T-frame sequence; per-frame normalization is unsupported");
  MMHAR_REQUIRE(dsp::is_power_of_two(config.num_samples) &&
                    hm.range_bins <= config.num_samples,
                "ServingConfig: num_samples must be a power of two >= "
                "range_bins");
  MMHAR_REQUIRE(dsp::is_power_of_two(hm.angle_bins) &&
                    hm.angle_bins >= config.num_antennas,
                "ServingConfig: angle_bins must be a power of two >= "
                "num_antennas");
  MMHAR_REQUIRE(mc.num_classes <= kMaxServingClasses,
                "ServingConfig: num_classes exceeds kMaxServingClasses");

  window_frames_ = mc.frames;
  num_classes_ = mc.num_classes;
  deadline_enabled_ = config.slo_ms > 0;
  deadline_budget_ = std::chrono::milliseconds(config.slo_ms);
  range_window_ = dsp::cached_window(hm.range_window, config.num_samples).data();
  registry_ = std::make_unique<Registry>();
  {
    MutexLock lk(registry_->mu);
    registry_->streams.reserve(config.max_streams);
  }

  const std::size_t hw = hm.range_bins * hm.angle_bins;
  const std::size_t spectra_elems =
      config.num_chirps * config.num_antennas * hm.range_bins;
  windows_ = std::make_unique<WindowTable>();
  windows_->w.resize(config.max_streams);
  for (WindowTable::StreamWindow& w : windows_->w)
    w.drai.resize(window_frames_ * hw);

  shards_.reserve(config.num_shards);
  for (std::size_t i = 0; i < config.num_shards; ++i) {
    auto sh = std::make_unique<Shard>();
    sh->cycle_streams.resize(config.max_streams, nullptr);
    sh->cycle_ids.resize(config.max_streams, 0);
    sh->claims.resize(config.batch_max);
    sh->range_ios.resize(config.batch_max);
    sh->angle_ios.resize(config.batch_max);
    sh->spectra.resize(config.batch_max * spectra_elems);
    sh->jobs.resize(config.batch_max);
    sh->net_input.resize(config.batch_max * window_frames_ * hw);
    sh->logits.resize(config.batch_max * num_classes_);
    sh->model_input.resize(config.batch_max * window_frames_ * hw);
    sh->model_logits.resize(config.batch_max * num_classes_);
    sh->model_rows.resize(config.batch_max);
    sh->claim_dead.resize(config.batch_max, 0);
    sh->job_dead.resize(config.batch_max, 0);
    sh->scratch.reserve(models_.plan(0), config.batch_max);
    shards_.push_back(std::move(sh));
  }
  watchdog_ = std::make_unique<WatchdogState>();
}

StreamingHarService::~StreamingHarService() { stop(); }

std::size_t StreamingHarService::add_model(har::HarModel& model) {
  MMHAR_REQUIRE(!started_,
                "add_model: models must be registered before start() — "
                "running shards read the registry lock-free");
  return models_.add(model);
}

std::size_t StreamingHarService::add_stream(std::size_t model_id) {
  MMHAR_REQUIRE(model_id < models_.size(),
                "add_stream: unknown model id " << model_id << " ("
                    << models_.size() << " registered)");
  const std::size_t frame_elems =
      config_.num_chirps * config_.num_antennas * config_.num_samples;
  MutexLock lk(registry_->mu);
  MMHAR_REQUIRE(registry_->streams.size() < config_.max_streams,
                "add_stream: all " << config_.max_streams
                                   << " stream slots are active");
  const std::size_t id = registry_->streams.size();
  const std::size_t shard = shard_for_key(id, config_.num_shards);
  registry_->streams.push_back(std::make_unique<Stream>(
      config_.queue_depth, frame_elems, config_.result_depth, shard,
      model_id));
  return id;
}

StreamingHarService::Stream* StreamingHarService::stream_ptr(
    std::size_t idx) const {
  MutexLock lk(registry_->mu);
  MMHAR_REQUIRE(idx < registry_->streams.size(),
                "unknown stream id " << idx);
  return registry_->streams[idx].get();
}

std::size_t StreamingHarService::shard_of_stream(std::size_t stream) const {
  return stream_ptr(stream)->shard;
}

bool StreamingHarService::submit_frame(std::size_t stream,
                                       const dsp::RadarCube& cube) {
  MMHAR_REQUIRE(cube.num_chirps() == config_.num_chirps &&
                    cube.num_antennas() == config_.num_antennas &&
                    cube.num_samples() == config_.num_samples,
                "submit_frame: cube geometry does not match ServingConfig");
  Stream* s = stream_ptr(stream);
  const Clock::time_point now = Clock::now();

  std::size_t slot = 0;
  bool evicted = false;
  {
    MutexLock lk(s->mu);
    ++s->submitted;
    if (s->free_count > 0) {
      slot = s->free_list[--s->free_count];
    } else if (config_.drop_policy == DropPolicy::kOldest && s->qcount > 0) {
      // Evict the oldest *queued* frame and reuse its slot; claimed
      // (in-flight) frames are never dropped.
      slot = s->queued[s->qhead];
      s->qhead = (s->qhead + 1) % config_.queue_depth;
      --s->qcount;
      ++s->dropped;
      evicted = true;
    } else {
      ++s->rejected;
      return false;
    }
  }

  // Copy the frame outside the lock: the slot index is exclusively ours
  // until we publish it to the queued ring below.
  std::copy(cube.raw().begin(), cube.raw().end(), s->slot_data[slot].begin());

  {
    MutexLock lk(s->mu);
    ++s->accepted;
    s->slot_seq[slot] = s->next_seq++;
    s->slot_arrival[slot] = now;
    s->queued[(s->qhead + s->qcount) % config_.queue_depth] = slot;
    ++s->qcount;
    if (s->qcount > s->deepest_queue) s->deepest_queue = s->qcount;
  }

  // Eviction removed one queued frame and this submit added one, so the
  // pending count only moves on a non-evicting admit. Only the stream's
  // affinity shard is woken — the others have no claim on this frame.
  if (!evicted) {
    Sched& sched = shards_[s->shard]->sched;
    MutexLock lk(sched.mu);
    ++sched.pending;
    sched.cv.notify_one();
  }
  return true;
}

std::size_t StreamingHarService::poll(std::size_t stream,
                                      std::span<Classification> out) {
  Stream* s = stream_ptr(stream);
  MutexLock lk(s->results_mu);
  const std::size_t n = std::min(out.size(), s->rcount);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = s->results[s->rhead];
    s->rhead = (s->rhead + 1) % config_.result_depth;
  }
  s->rcount -= n;
  return n;
}

StreamStats StreamingHarService::stream_stats(std::size_t stream) const {
  Stream* s = stream_ptr(stream);
  StreamStats st;
  {
    MutexLock lk(s->mu);
    st.submitted = s->submitted;
    st.accepted = s->accepted;
    st.dropped_frames = s->dropped;
    st.rejected_frames = s->rejected;
    st.deadline_dropped = s->deadline_dropped;
    st.deepest_queue = s->deepest_queue;
    st.quarantined = s->quarantined;
    st.errors = s->errors;
    st.suspended_dropped = s->suspended_dropped;
    st.suspensions = s->suspensions;
    st.suspended = s->suspended;
  }
  {
    MutexLock lk(s->results_mu);
    st.classifications = s->classifications;
    st.dropped_results = s->dropped_results;
  }
  return st;
}

ShardStats StreamingHarService::shard_stats(std::size_t shard) const {
  MMHAR_REQUIRE(shard < shards_.size(), "unknown shard " << shard);
  const Shard& sh = *shards_[shard];
  ShardStats st;
  st.cycles = sh.stat_cycles.load(std::memory_order_relaxed);
  st.frames = sh.stat_frames.load(std::memory_order_relaxed);
  st.classifications = sh.stat_classifications.load(std::memory_order_relaxed);
  st.deadline_dropped =
      sh.stat_deadline_dropped.load(std::memory_order_relaxed);
  return st;
}

ServiceHealth StreamingHarService::health() const {
  ServiceHealth h;
  h.watchdog_running = watchdog_running_.load(std::memory_order_relaxed);
  h.shards.reserve(shards_.size());
  for (const std::unique_ptr<Shard>& sh : shards_) {
    ShardHealth sd;
    sd.crashed = sh->crashed.load(std::memory_order_acquire);
    sd.stalled = sh->stalled.load(std::memory_order_relaxed);
    sd.heartbeat = sh->heartbeat.load(std::memory_order_relaxed);
    sd.restarts = sh->stat_restarts.load(std::memory_order_relaxed);
    sd.faults = sh->stat_faults.load(std::memory_order_relaxed);
    h.restarts += sd.restarts;
    h.shards.push_back(sd);
  }
  MutexLock lk(registry_->mu);
  for (const std::unique_ptr<Stream>& s : registry_->streams) {
    MutexLock slk(s->mu);
    h.quarantined += s->quarantined;
    h.errors += s->errors;
    if (s->suspended) ++h.suspended_streams;
  }
  return h;
}

// Claim at most one live queued frame per stream of this shard
// (round-robin, rotating start so no stream starves), up to `budget`
// total. Frames whose admission deadline has already passed are discarded
// on the way (their count lands in *expired and the per-stream
// deadline_dropped counter) — deadline scheduling replaces FIFO-oldest:
// a shard never spends its cycle on work nobody can use. A suspended
// stream first sheds its backlog (all but the newest queued frame,
// counted in *shed and suspended_dropped — the queue is at most
// queue_depth deep, so shedding is bounded without charging the budget)
// and then claims the survivor as its recovery probe. Claims land in
// sh.claims in per-stream FIFO order.
std::size_t StreamingHarService::claim_round(Shard& sh, std::size_t budget,
                                             std::size_t* expired,
                                             std::size_t* shed) {
  *expired = 0;
  *shed = 0;
  const std::size_t n = sh.n_cycle_streams;
  if (n == 0 || budget == 0) return 0;
  const Clock::time_point now =
      deadline_enabled_ ? Clock::now() : Clock::time_point{};
  std::size_t got = 0;
  for (std::size_t k = 0; k < n && got < budget; ++k) {
    const std::size_t idx = (sh.rr + k) % n;
    Stream* s = sh.cycle_streams[idx];
    MutexLock lk(s->mu);
    if (s->suspended) {
      while (s->qcount > 1) {
        const std::size_t slot = s->queued[s->qhead];
        s->qhead = (s->qhead + 1) % config_.queue_depth;
        --s->qcount;
        s->free_list[s->free_count++] = slot;
        ++s->suspended_dropped;
        ++*shed;
      }
    }
    while (s->qcount > 0) {
      const std::size_t slot = s->queued[s->qhead];
      s->qhead = (s->qhead + 1) % config_.queue_depth;
      --s->qcount;
      if (deadline_enabled_ &&
          now >= s->slot_arrival[slot] + deadline_budget_) {
        s->free_list[s->free_count++] = slot;
        ++s->deadline_dropped;
        ++*expired;
        continue;  // scan on: a younger queued frame may still be live
      }
      sh.claims[got] = {s, sh.cycle_ids[idx], slot, s->slot_seq[slot],
                        s->slot_arrival[slot]};
      ++got;
      break;
    }
  }
  sh.rr = (sh.rr + 1) % n;
  return got;
}

// Attribute one contained fault to its stream: bump the quarantine or
// error counter, advance the consecutive-fault streak, and suspend the
// stream once the streak crosses max_stream_faults (0 = never). Cold
// path by construction — it only runs when a fault actually fired.
void StreamingHarService::record_stream_fault(Shard& sh, Stream* s,
                                              bool quarantine) {
  sh.stat_faults.fetch_add(1, std::memory_order_relaxed);
  MutexLock lk(s->mu);
  if (quarantine) {
    ++s->quarantined;
  } else {
    ++s->errors;
  }
  ++s->consecutive_faults;
  if (config_.max_stream_faults > 0 && !s->suspended &&
      s->consecutive_faults >= config_.max_stream_faults) {
    s->suspended = true;
    ++s->suspensions;
  }
}

// Poison-frame quarantine at the claim boundary: every claimed payload is
// scanned (always on — the slot is exclusively ours here, outside any
// lock) and a frame carrying NaN/Inf is dropped before it can reach the
// fused DSP, its slot returned to the producer and the fault attributed
// to its stream. serving.frame_poison injects a real NaN into the payload
// first, so the injected and the hostile-producer paths are one path.
// Returns the number of survivors; sh.claims is compacted to them in
// stable (per-stream FIFO) order.
std::size_t StreamingHarService::quarantine_claims(Shard& sh,
                                                   std::size_t n_claims) {
  const std::size_t frame_elems =
      config_.num_chirps * config_.num_antennas * config_.num_samples;
  std::size_t live = 0;
  for (std::size_t i = 0; i < n_claims; ++i) {
    const Shard::Claim& cl = sh.claims[i];
    dsp::cfloat* const payload = cl.stream->slot_data[cl.slot].data();
    if (fault_injection_armed()) {
      // Armed-only cold path: the injector takes its own mutex and may
      // allocate bookkeeping, which is exactly why it hides behind the
      // relaxed-atomic armed gate.
      // mmhar-rtcheck: allow(calls)
      if (fault_should_fire("serving.frame_poison")) {
        // mmhar-rtcheck: allow(calls)
        const std::size_t at = fault_draw(frame_elems);
        payload[at] = dsp::cfloat(std::numeric_limits<float>::quiet_NaN(),
                                  payload[at].imag());
      }
    }
    const FiniteScan scan = detail::scan_finite(
        reinterpret_cast<const float*>(payload), 2 * frame_elems);
    if (scan.has_nan_or_inf()) {
      {
        MutexLock lk(cl.stream->mu);
        cl.stream->free_list[cl.stream->free_count++] = cl.slot;
      }
      record_stream_fault(sh, cl.stream, /*quarantine=*/true);
      continue;
    }
    if (live != i) sh.claims[live] = sh.claims[i];
    ++live;
  }
  return live;
}

// One pipeline round over the current claim list (at most one frame per
// stream, so a window slot written this round is never part of an
// already-recorded job). Stages are fused across every claimed frame.
//
// Containment: mmhar::Error at a fused DSP boundary degrades to
// per-frame (batch-1) reruns — per-lane FFT arithmetic is independent of
// batch composition, so the reruns are bit-identical and only the faulty
// frame is sacrificed (claim_dead, StreamStats::errors). A dead frame
// never advances its stream's window, so the window slot it would have
// written is simply rewritten by the next clean frame.
void StreamingHarService::process_round(Shard& sh, std::size_t n_claims) {
  const dsp::HeatmapConfig& hm = config_.heatmap;
  const std::size_t hw = hm.range_bins * hm.angle_bins;
  const std::size_t wlen = window_frames_ * hw;
  const std::size_t spectra_elems =
      config_.num_chirps * config_.num_antennas * hm.range_bins;
  MMHAR_CHECK(sh.spectra.size() >= n_claims * spectra_elems);
  MMHAR_CHECK(sh.claim_dead.size() >= n_claims);
  dsp::cfloat* const spectra = sh.spectra.data();
  std::fill_n(sh.claim_dead.begin(), n_claims, std::uint8_t{0});

  // Stage 1: every claimed frame's windowed Range-FFT in ONE batched
  // call — SIMD lanes run across (chirp, antenna) rows of all frames of
  // all the shard's streams in this round.
  MMHAR_CHECK(sh.range_ios.size() >= n_claims);
  for (std::size_t i = 0; i < n_claims; ++i) {
    const Shard::Claim& cl = sh.claims[i];
    sh.range_ios[i] = {cl.stream->slot_data[cl.slot].data(),
                       spectra + i * spectra_elems};
  }
  dsp::FftManyJob range_job;
  range_job.n = config_.num_samples;
  range_job.in_len = config_.num_samples;
  range_job.window = range_window_;
  range_job.lanes = config_.num_chirps * config_.num_antennas;
  range_job.in_lane_stride = config_.num_samples;
  range_job.in_elem_stride = 1;
  try {
    dsp::fft_many_crop_multi(range_job, hm.range_bins,
                             std::span<const dsp::FftManyIo>(
                                 sh.range_ios.data(), n_claims),
                             hm.range_bins, 1);
  } catch (const Error&) {
    for (std::size_t i = 0; i < n_claims; ++i) {
      MMHAR_CHECK(i < sh.range_ios.size());
      try {
        dsp::fft_many_crop_multi(range_job, hm.range_bins,
                                 std::span<const dsp::FftManyIo>(
                                     sh.range_ios.data() + i, 1),
                                 hm.range_bins, 1);
      } catch (const Error&) {
        sh.claim_dead[i] = 1;
        record_stream_fault(sh, sh.claims[i].stream, /*quarantine=*/false);
      }
    }
  }

  // Post-FFT tripwire (what used to be a fatal whole-batch check_finite):
  // per-frame, non-throwing, attributed to the offending stream.
  if (finite_checks_enabled()) {
    for (std::size_t i = 0; i < n_claims; ++i) {
      if (sh.claim_dead[i] != 0) continue;
      const FiniteScan scan = detail::scan_finite(
          reinterpret_cast<const float*>(spectra + i * spectra_elems),
          2 * spectra_elems);
      const bool storm =
          scan.denormal_count >= kDenormalStormMinCount &&
          static_cast<double>(scan.denormal_count) >
              kDenormalStormFraction * static_cast<double>(2 * spectra_elems);
      if (scan.has_nan_or_inf() || storm) {
        sh.claim_dead[i] = 1;
        record_stream_fault(sh, sh.claims[i].stream, /*quarantine=*/false);
      }
    }
  }

  // Stage 2: static clutter removal (serial per frame — pool-free).
  if (hm.remove_clutter) {
    for (std::size_t i = 0; i < n_claims; ++i) {
      if (sh.claim_dead[i] != 0) continue;
      dsp::remove_static_clutter_serial(spectra + i * spectra_elems,
                                        config_.num_chirps,
                                        config_.num_antennas, hm.range_bins);
    }
  }

  // Frame payloads are consumed; hand the slots back to the producers.
  for (std::size_t i = 0; i < n_claims; ++i) {
    const Shard::Claim& cl = sh.claims[i];
    MutexLock lk(cl.stream->mu);
    cl.stream->free_list[cl.stream->free_count++] = cl.slot;
  }

  // Stage 3: every surviving frame's Angle-FFT → raw DRAI in ONE batched
  // call, written straight into its stream's window ring slot. Window
  // bookkeeping (ring advance, job record) is deferred until the FFT
  // outcome is known, so a frame that dies here leaves its stream's
  // window exactly as if the frame were never submitted — the slot it
  // targeted is rewritten by the next clean frame. (At most one claim
  // per stream per round, so the deferral cannot interleave two frames
  // of one stream.)
  MMHAR_CHECK(sh.angle_ios.size() >= n_claims &&
              sh.jobs.size() >= sh.n_jobs + n_claims);
  std::size_t n_live = 0;
  for (std::size_t i = 0; i < n_claims; ++i) {
    if (sh.claim_dead[i] != 0) continue;
    const Shard::Claim& cl = sh.claims[i];
    WindowTable::StreamWindow& w = windows_->w[cl.stream_id];
    MMHAR_CHECK(w.drai.size() == wlen && w.next < window_frames_);
    sh.angle_ios[n_live] = {spectra + i * spectra_elems,
                            w.drai.data() + w.next * hw};
    ++n_live;
  }
  dsp::FftManyJob angle_job;
  angle_job.n = hm.angle_bins;
  angle_job.in_len = config_.num_antennas;
  angle_job.lanes = hm.range_bins;
  angle_job.in_lane_stride = 1;
  angle_job.in_elem_stride = hm.range_bins;
  angle_job.reps = config_.num_chirps;
  angle_job.in_rep_stride = config_.num_antennas * hm.range_bins;
  try {
    dsp::fft_many_mag_accum_multi(angle_job, /*shift=*/true,
                                  std::span<const dsp::FftManyMagIo>(
                                      sh.angle_ios.data(), n_live),
                                  hm.angle_bins, 1);
  } catch (const Error&) {
    std::size_t io = 0;
    for (std::size_t i = 0; i < n_claims; ++i) {
      if (sh.claim_dead[i] != 0) continue;
      MMHAR_CHECK(io < sh.angle_ios.size());
      try {
        dsp::fft_many_mag_accum_multi(angle_job, /*shift=*/true,
                                      std::span<const dsp::FftManyMagIo>(
                                          sh.angle_ios.data() + io, 1),
                                      hm.angle_bins, 1);
      } catch (const Error&) {
        sh.claim_dead[i] = 1;
        record_stream_fault(sh, sh.claims[i].stream, /*quarantine=*/false);
      }
      ++io;
    }
  }

  // Deferred window bookkeeping for the survivors; a clean frame that
  // completes DSP without filling its window is this stream's recovery
  // signal (jobs get theirs after clean logits in run_inference).
  const std::size_t round_job_start = sh.n_jobs;
  for (std::size_t i = 0; i < n_claims; ++i) {
    if (sh.claim_dead[i] != 0) continue;
    const Shard::Claim& cl = sh.claims[i];
    WindowTable::StreamWindow& w = windows_->w[cl.stream_id];
    w.next = (w.next + 1) % window_frames_;
    if (w.filled < window_frames_) ++w.filled;
    if (w.filled == window_frames_) {
      sh.jobs[sh.n_jobs++] = {cl.stream, cl.stream_id, cl.stream->model,
                              cl.seq, cl.arrival};
    } else {
      clear_stream_fault_streak(cl.stream);
    }
  }

  // Stage 4: gather the windows completed this round into network-input
  // rows, applying the sequence-level dB conversion and min-max
  // normalization exactly as compute_drai_sequence's tail does (to_db
  // then normalize01 over the whole [T, R, A] block).
  MMHAR_CHECK(sh.net_input.size() >= sh.n_jobs * wlen);
  float* const net_input = sh.net_input.data();
  for (std::size_t j = round_job_start; j < sh.n_jobs; ++j) {
    const WindowTable::StreamWindow& w = windows_->w[sh.jobs[j].stream_id];
    float* row = net_input + j * wlen;
    for (std::size_t t = 0; t < window_frames_; ++t) {
      const std::size_t src = (w.next + t) % window_frames_;
      std::copy(w.drai.begin() +
                    static_cast<std::ptrdiff_t>(src * hw),
                w.drai.begin() + static_cast<std::ptrdiff_t>((src + 1) * hw),
                row + t * hw);
    }
    if (hm.log_scale) {
      for (std::size_t i = 0; i < wlen; ++i)
        row[i] = 20.0F * std::log10(std::max(row[i], hm.db_floor));
    }
    if (hm.normalize) {
      const float lo = *std::min_element(row, row + wlen);
      const float hi = *std::max_element(row, row + wlen);
      const float range = hi - lo;
      if (range <= 0.0F) {
        std::fill(row, row + wlen, 0.0F);
      } else {
        const float inv = 1.0F / range;
        for (std::size_t i = 0; i < wlen; ++i) row[i] = (row[i] - lo) * inv;
      }
    }
  }
}

// A clean frame lifts its stream's consecutive-fault streak (and any
// suspension). Called once per surviving frame/job, under the stream's
// hand-off mutex; cheap enough for the hot path, and keeping it
// unconditional avoids an unguarded racy pre-check of guarded state.
void StreamingHarService::clear_stream_fault_streak(Stream* s) {
  MutexLock lk(s->mu);
  if (s->consecutive_faults != 0 || s->suspended) {
    s->consecutive_faults = 0;
    s->suspended = false;
  }
}

// Cross-stream micro-batched CNN-LSTM forward over every window that
// completed this cycle — one infer_forward per model version with jobs.
// With a single registered model the gather is skipped and the whole
// cycle goes through one call; either way each output row's arithmetic is
// independent of batch composition, so grouping by model cannot change
// any stream's logits.
//
// Containment: an injected serving.infer_fail (one draw per job row) or
// an mmhar::Error escaping the fused forward degrades the cycle to
// per-row batch-1 reruns — row arithmetic is batch-composition
// independent, so every surviving row's logits are bit-identical to the
// fused result and only the faulty rows are sacrificed (job_dead,
// StreamStats::errors). Rows whose logits come back non-finite are
// sacrificed the same way instead of tearing the process down.
void StreamingHarService::run_inference(Shard& sh) {
  const dsp::HeatmapConfig& hm = config_.heatmap;
  const std::size_t wlen =
      window_frames_ * hm.range_bins * hm.angle_bins;
  MMHAR_CHECK(sh.logits.size() >= sh.n_jobs * num_classes_);
  MMHAR_CHECK(sh.job_dead.size() >= sh.n_jobs);
  std::fill_n(sh.job_dead.begin(), sh.n_jobs, std::uint8_t{0});

  bool degraded = false;
  if (fault_injection_armed()) {
    for (std::size_t j = 0; j < sh.n_jobs; ++j) {
      // Armed-only cold path (see quarantine_claims).
      // mmhar-rtcheck: allow(calls)
      if (fault_should_fire("serving.infer_fail")) {
        sh.job_dead[j] = 1;
        degraded = true;
        record_stream_fault(sh, sh.jobs[j].stream, /*quarantine=*/false);
      }
    }
  }

  if (!degraded) {
    try {
      if (models_.size() == 1) {
        har::infer_forward(models_.plan(0), sh.scratch, sh.net_input.data(),
                           sh.n_jobs, sh.logits.data());
      } else {
        for (std::size_t m = 0; m < models_.size(); ++m) {
          std::size_t rows = 0;
          for (std::size_t j = 0; j < sh.n_jobs; ++j) {
            if (sh.jobs[j].model != m) continue;
            sh.model_rows[rows] = j;
            std::copy(
                sh.net_input.begin() + static_cast<std::ptrdiff_t>(j * wlen),
                sh.net_input.begin() +
                    static_cast<std::ptrdiff_t>((j + 1) * wlen),
                sh.model_input.begin() +
                    static_cast<std::ptrdiff_t>(rows * wlen));
            ++rows;
          }
          if (rows == 0) continue;
          har::infer_forward(models_.plan(m), sh.scratch,
                             sh.model_input.data(), rows,
                             sh.model_logits.data());
          for (std::size_t r = 0; r < rows; ++r)
            std::copy(sh.model_logits.begin() +
                          static_cast<std::ptrdiff_t>(r * num_classes_),
                      sh.model_logits.begin() +
                          static_cast<std::ptrdiff_t>((r + 1) * num_classes_),
                      sh.logits.begin() +
                          static_cast<std::ptrdiff_t>(sh.model_rows[r] *
                                                      num_classes_));
        }
      }
    } catch (const Error&) {
      degraded = true;
    }
  }

  if (degraded) {
    for (std::size_t j = 0; j < sh.n_jobs; ++j) {
      if (sh.job_dead[j] != 0) continue;
      MMHAR_CHECK((j + 1) * wlen <= sh.net_input.size() &&
                  (j + 1) * num_classes_ <= sh.logits.size());
      try {
        har::infer_forward(models_.plan(sh.jobs[j].model), sh.scratch,
                           sh.net_input.data() + j * wlen, 1,
                           sh.logits.data() + j * num_classes_);
      } catch (const Error&) {
        sh.job_dead[j] = 1;
        record_stream_fault(sh, sh.jobs[j].stream, /*quarantine=*/false);
      }
    }
  }

  // Post-forward tripwire (what used to be a fatal whole-batch
  // check_finite): per-row, non-throwing, attributed per stream.
  if (finite_checks_enabled()) {
    for (std::size_t j = 0; j < sh.n_jobs; ++j) {
      if (sh.job_dead[j] != 0) continue;
      MMHAR_CHECK((j + 1) * num_classes_ <= sh.logits.size());
      const FiniteScan scan = detail::scan_finite(
          sh.logits.data() + j * num_classes_, num_classes_);
      const bool storm =
          scan.denormal_count >= kDenormalStormMinCount &&
          static_cast<double>(scan.denormal_count) >
              kDenormalStormFraction * static_cast<double>(num_classes_);
      if (scan.has_nan_or_inf() || storm) {
        sh.job_dead[j] = 1;
        record_stream_fault(sh, sh.jobs[j].stream, /*quarantine=*/false);
      }
    }
  }

  for (std::size_t j = 0; j < sh.n_jobs; ++j)
    if (sh.job_dead[j] == 0) clear_stream_fault_streak(sh.jobs[j].stream);
}

// Publish the cycle's classifications into their streams' result rings.
// Under deadline scheduling a result that is already past its newest
// frame's deadline is discarded instead of delivered — a late answer is
// useless to the consumer, and delivering it would hide the overload the
// SLO exists to surface (those land in *expired). Rows sacrificed by
// fault containment were already attributed in run_inference and are
// simply skipped. Returns the number actually published.
std::size_t StreamingHarService::publish_results(Shard& sh,
                                                 std::size_t* expired) {
  const Clock::time_point now = Clock::now();
  *expired = 0;
  std::size_t published = 0;
  for (std::size_t j = 0; j < sh.n_jobs; ++j) {
    const Shard::Job& job = sh.jobs[j];
    Stream* s = job.stream;
    if (sh.job_dead[j] != 0) continue;
    if (deadline_enabled_ && now > job.arrival + deadline_budget_) {
      MutexLock lk(s->mu);
      ++s->deadline_dropped;
      ++*expired;
      continue;
    }
    MMHAR_CHECK((j + 1) * num_classes_ <= sh.logits.size());
    const float* row = sh.logits.data() + j * num_classes_;
    Classification result;
    result.frame_seq = job.seq;
    result.latency_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                            now - job.arrival)
                            .count();
    std::size_t best = 0;
    for (std::size_t c = 1; c < num_classes_; ++c)
      if (row[c] > row[best]) best = c;
    result.predicted = best;
    std::copy(row, row + num_classes_, result.logits);
    MutexLock lk(s->results_mu);
    if (s->rcount == config_.result_depth) {
      s->rhead = (s->rhead + 1) % config_.result_depth;
      --s->rcount;
      ++s->dropped_results;
    }
    s->results[(s->rhead + s->rcount) % config_.result_depth] = result;
    ++s->rcount;
    ++s->classifications;
    ++published;
  }
  return published;
}

std::size_t StreamingHarService::run_shard_cycle(std::size_t shard) {
  MMHAR_CHECK(shard < shards_.size());
  Shard& sh = *shards_[shard];
  {
    MutexLock lk(registry_->mu);
    const std::size_t n = registry_->streams.size();
    MMHAR_CHECK(sh.cycle_streams.size() >= n);
    sh.n_cycle_streams = 0;
    for (std::size_t i = 0; i < n; ++i) {
      Stream* s = registry_->streams[i].get();
      if (s->shard != shard) continue;
      sh.cycle_streams[sh.n_cycle_streams] = s;
      sh.cycle_ids[sh.n_cycle_streams] = i;
      ++sh.n_cycle_streams;
    }
  }
  sh.n_jobs = 0;

  // Claim until the batch budget is spent; deadline-expired and
  // suspension-shed frames count against the budget too (their removal
  // is the cycle's work product as much as a classification is, and the
  // bound keeps a flood of stale frames from pinning the shard in this
  // loop). Every claim passes the quarantine scan before it may enter
  // the fused DSP round.
  std::size_t claimed = 0;
  std::size_t expired = 0;
  std::size_t shed = 0;
  while (claimed + expired + shed < config_.batch_max) {
    std::size_t round_expired = 0;
    std::size_t round_shed = 0;
    const std::size_t got =
        claim_round(sh, config_.batch_max - claimed - expired - shed,
                    &round_expired, &round_shed);
    expired += round_expired;
    shed += round_shed;
    if (got == 0 && round_expired == 0 && round_shed == 0) break;
    if (got > 0) {
      const std::size_t live = quarantine_claims(sh, got);
      if (live > 0) process_round(sh, live);
    }
    claimed += got;
  }

  std::size_t published = 0;
  std::size_t publish_expired = 0;
  if (sh.n_jobs > 0) {
    run_inference(sh);
    published = publish_results(sh, &publish_expired);
  }

  const std::size_t consumed = claimed + expired + shed;
  if (consumed > 0) {
    {
      MutexLock lk(sh.sched.mu);
      sh.sched.pending -= static_cast<std::int64_t>(consumed);
    }
    sh.stat_cycles.fetch_add(1, std::memory_order_relaxed);
    sh.stat_frames.fetch_add(claimed, std::memory_order_relaxed);
    sh.stat_classifications.fetch_add(published, std::memory_order_relaxed);
    sh.stat_deadline_dropped.fetch_add(expired + publish_expired,
                                       std::memory_order_relaxed);
  }
  return consumed;
}

std::size_t StreamingHarService::run_cycle() {
  std::size_t total = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i)
    total += run_shard_cycle(i);
  return total;
}

// Worker loop. Fault-containment duties on top of the claim/cycle work:
//  * No exception may escape (it would std::terminate the process): an
//    escaped mmhar::Error — or anything else — marks the shard crashed
//    and returns; the watchdog restarts it while other shards keep
//    serving. serving.shard_crash injects exactly that, claim-free by
//    construction (it fires before any frame is claimed, so no slot is
//    ever leaked by an injected crash).
//  * serving.shard_stall parks the worker on its condvar — a model of a
//    wedged thread at a cancellation point — until a restart or stop()
//    releases it.
//  * The condvar wait is timed (kIdlePoll) and a long streak of
//    zero-consume cycles clamps a positive pending count back to zero:
//    together they self-heal both directions of a pending count left
//    stale by a genuine crash mid-cycle (a lost wake costs at most one
//    poll period; a phantom pending stops burning CPU after the clamp).
void StreamingHarService::shard_main(std::size_t shard) {
  Shard& sh = *shards_[shard];
  int zero_streak = 0;
  for (;;) {
    {
      MutexLock lk(sh.sched.mu);
      while (sh.sched.pending <= 0 && !sh.sched.stop) {
        if (!sh.sched.cv.wait_for(sh.sched.mu, kIdlePoll))
          break;  // timed out: run a probe cycle in case a wake was lost
      }
      if (sh.sched.stop) return;
    }
    sh.heartbeat.fetch_add(1, std::memory_order_relaxed);
    try {
      if (fault_injection_armed()) {
        if (fault_should_fire("serving.shard_crash"))
          throw Error("fault injection: serving.shard_crash");
        if (fault_should_fire("serving.shard_stall")) {
          sh.stalled.store(true, std::memory_order_relaxed);
          MutexLock lk(sh.sched.mu);
          while (!sh.sched.stop) sh.sched.cv.wait(sh.sched.mu);
          return;
        }
      }
      if (run_shard_cycle(shard) == 0) {
        // A zero-consume cycle usually means a producer is mid-submit
        // (the pending increment lands after the enqueue); yield instead
        // of spinning hot. A long streak means the count itself is stale.
        if (++zero_streak >= kZeroConsumeClamp) {
          zero_streak = 0;
          MutexLock lk(sh.sched.mu);
          if (sh.sched.pending > 0) sh.sched.pending = 0;
        }
        std::this_thread::yield();
      } else {
        zero_streak = 0;
      }
    } catch (...) {
      // Satellite hazard fix: nothing crosses the thread boundary. The
      // shard parks; its streams' queued frames wait for the restart.
      sh.stat_faults.fetch_add(1, std::memory_order_relaxed);
      sh.crashed.store(true, std::memory_order_release);
      return;
    }
  }
}

// ---- Supervision (watchdog control plane) ----------------------------------

// One watchdog pass over one shard. `last_heartbeat`/`strikes` are the
// caller's per-shard memory between passes: a crashed worker restarts
// immediately; a heartbeat frozen across kStallStrikes passes while work
// is pending is declared stalled and restarted. A worker busy inside a
// long cycle keeps its heartbeat frozen too — the restart protocol just
// joins it after the cycle finishes, so a false positive costs a restart,
// never lost work.
void StreamingHarService::supervise_shard(std::size_t shard,
                                          std::uint64_t* last_heartbeat,
                                          int* strikes) {
  Shard& sh = *shards_[shard];
  if (sh.crashed.load(std::memory_order_acquire)) {
    restart_shard(shard);
    *strikes = 0;
    *last_heartbeat = sh.heartbeat.load(std::memory_order_relaxed);
    return;
  }
  const std::uint64_t hb = sh.heartbeat.load(std::memory_order_relaxed);
  std::int64_t pending = 0;
  {
    MutexLock lk(sh.sched.mu);
    pending = sh.sched.pending;
  }
  if (hb == *last_heartbeat && pending > 0) {
    if (++*strikes >= kStallStrikes) {
      sh.stalled.store(true, std::memory_order_relaxed);
      restart_shard(shard);
      *strikes = 0;
    }
  } else {
    *strikes = 0;
    sh.stalled.store(false, std::memory_order_relaxed);
  }
  *last_heartbeat = sh.heartbeat.load(std::memory_order_relaxed);
}

// Restart protocol: stop + join the (possibly already-returned) worker,
// reset the shard's cycle arenas — per-stream state (frame rings, result
// rings, DRAI windows) belongs to the streams and survives untouched —
// and respawn. Only ever called from the watchdog thread, which stop()
// joins before touching any worker, so the std::thread object has exactly
// one owner at a time.
void StreamingHarService::restart_shard(std::size_t shard) {
  Shard& sh = *shards_[shard];
  {
    MutexLock lk(sh.sched.mu);
    sh.sched.stop = true;
    sh.sched.cv.notify_all();
  }
  if (sh.worker.joinable()) sh.worker.join();
  sh.n_jobs = 0;
  sh.n_cycle_streams = 0;
  sh.rr = 0;
  sh.crashed.store(false, std::memory_order_relaxed);
  sh.stalled.store(false, std::memory_order_relaxed);
  sh.stat_restarts.fetch_add(1, std::memory_order_relaxed);
  {
    MutexLock lk(sh.sched.mu);
    sh.sched.stop = false;
  }
  sh.worker = std::thread([this, shard] { shard_main(shard); });
}

void StreamingHarService::watchdog_main() {
  const std::chrono::milliseconds period(config_.watchdog_ms);
  // Cold control plane: these two vectors are the watchdog's entire
  // working set, allocated once before the first pass.
  std::vector<std::uint64_t> last(shards_.size(), 0);
  std::vector<int> strikes(shards_.size(), 0);
  for (;;) {
    {
      MutexLock lk(watchdog_->mu);
      if (watchdog_->stop) return;
      watchdog_->cv.wait_for(watchdog_->mu, period);
      if (watchdog_->stop) return;
    }
    for (std::size_t i = 0; i < shards_.size(); ++i)
      supervise_shard(i, &last[i], &strikes[i]);
  }
}

void StreamingHarService::start() {
  MMHAR_REQUIRE(!started_, "StreamingHarService::start: already running");
  for (std::unique_ptr<Shard>& sh : shards_) {
    MutexLock lk(sh->sched.mu);
    sh->sched.stop = false;
  }
  for (std::size_t i = 0; i < shards_.size(); ++i)
    shards_[i]->worker = std::thread([this, i] { shard_main(i); });
  if (config_.watchdog_ms > 0) {
    {
      MutexLock lk(watchdog_->mu);
      watchdog_->stop = false;
    }
    watchdog_thread_ = std::thread([this] { watchdog_main(); });
    watchdog_running_.store(true, std::memory_order_relaxed);
  }
  started_ = true;
}

void StreamingHarService::stop() {
  if (!started_) return;
  // The watchdog goes first so no restart races the worker joins below.
  if (watchdog_thread_.joinable()) {
    {
      MutexLock lk(watchdog_->mu);
      watchdog_->stop = true;
      watchdog_->cv.notify_all();
    }
    watchdog_thread_.join();
    watchdog_running_.store(false, std::memory_order_relaxed);
  }
  for (std::unique_ptr<Shard>& sh : shards_) {
    MutexLock lk(sh->sched.mu);
    sh->sched.stop = true;
    sh->sched.cv.notify_all();
  }
  for (std::unique_ptr<Shard>& sh : shards_) {
    if (sh->worker.joinable()) sh->worker.join();
  }
  started_ = false;
}

}  // namespace mmhar::serving
