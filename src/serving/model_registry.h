// Multi-model registry for the sharded serving layer.
//
// Serving the paper's deployment experiment means running several
// HarModel *versions* side by side — the canonical pair being a clean
// model and a backdoored one, A/B'd over the same radar streams. The
// registry snapshots each registered model into its own prepacked-GEMM
// `InferencePlan` (weights frozen at registration; later training of the
// source model does not leak into serving) and hands shards index-stable
// access to the plans.
//
// Concurrency contract: add() is setup-phase only — all models must be
// registered before serving traffic starts (StreamingHarService enforces
// this: add_model refuses once the shard workers are running, and streams
// can only reference already-registered ids). After setup the registry is
// immutable, so shards read plan() without any synchronization.
//
// Every registered model must share model 0's architecture (all
// HarModelConfig fields except the weight-initialization seed): the DSP
// front-end, sliding-window arenas, and inference scratch are shared
// across models per shard, which is only sound when the geometry is
// identical. Clean-vs-backdoored pairs satisfy this by construction —
// poisoning changes weights, not architecture.
#pragma once

#include <cstddef>
#include <vector>

#include "har/infer.h"
#include "har/model.h"

namespace mmhar::serving {

class ModelRegistry {
 public:
  /// Registers `base` as model id 0; its architecture becomes the
  /// registry's fingerprint.
  explicit ModelRegistry(har::HarModel& base);

  /// Snapshot another model version; returns its id. Throws when the
  /// architecture differs from model 0's (seed excepted).
  std::size_t add(har::HarModel& model);

  /// Hot-path plan lookup: bounds-checked index, no locks, no copies.
  const har::InferencePlan& plan(std::size_t id) const;

  std::size_t size() const { return plans_.size(); }

  /// Shared architecture (model 0's config).
  const har::HarModelConfig& arch() const { return plans_.front().config; }

 private:
  std::vector<har::InferencePlan> plans_;
};

}  // namespace mmhar::serving
