// Stable stream → shard affinity for the sharded serving layer.
//
// A stream is pinned to exactly one batcher shard for its whole lifetime,
// so all of its per-stream state (frame ring, sliding DRAI window, result
// ring) has a single consuming thread and no cross-shard synchronization.
// The assignment is a pure function of the stream key and the shard
// count — no load-balancer state, no runtime migration — which is what
// makes per-stream results bit-identical for ANY shard count: a stream's
// pipeline never observes which other streams share its shard.
//
// The mixer is the splitmix64 finalizer (Steele et al., "Fast splittable
// pseudorandom number generators"): a fixed avalanche permutation of the
// key, so nearby stream ids do not land on the same shard run and the
// assignment is identical across platforms, processes, and runs.
#pragma once

#include <cstddef>
#include <cstdint>

namespace mmhar::serving {

/// Avalanche-mix a 64-bit stream key (splitmix64 finalizer).
constexpr std::uint64_t mix_affinity_key(std::uint64_t key) {
  key += 0x9E3779B97F4A7C15ULL;
  key = (key ^ (key >> 30)) * 0xBF58476D1CE4E5B9ULL;
  key = (key ^ (key >> 27)) * 0x94D049BB133111EBULL;
  return key ^ (key >> 31);
}

/// Shard owning `key` among `num_shards` shards. Stable: depends only on
/// the arguments. num_shards must be positive.
constexpr std::size_t shard_for_key(std::uint64_t key,
                                    std::size_t num_shards) {
  return static_cast<std::size_t>(mix_affinity_key(key) %
                                  static_cast<std::uint64_t>(num_shards));
}

}  // namespace mmhar::serving
