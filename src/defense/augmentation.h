// Data-augmentation defense (paper §VII, second countermeasure).
//
// The defender adds trigger-bearing heatmaps with their CORRECT activity
// labels to the training set, teaching the model that "trigger present"
// is not evidence for the target class. The defense is evaluated by the
// drop in ASR it induces on an otherwise identical poisoning attempt.
#pragma once

#include "har/dataset.h"

namespace mmhar::defense {

struct AugmentationConfig {
  /// How many correctly-labeled triggered samples to add, as a fraction
  /// of the victim-class count.
  double augmentation_rate = 0.5;
  std::uint64_t seed = 33;
};

/// Build the augmented training set: `poisoned_train` plus
/// `augmentation_rate * |victim class|` samples drawn from
/// `triggered_correct` (triggered twins carrying their true labels).
har::Dataset augment_with_correct_labels(
    const har::Dataset& poisoned_train,
    const har::Dataset& triggered_correct, std::size_t victim_label,
    const AugmentationConfig& config);

}  // namespace mmhar::defense
