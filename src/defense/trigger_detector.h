// Trigger-detection defense (paper §VII).
//
// A lightweight binary CNN classifies individual DRAI heatmap frames as
// clean vs trigger-bearing. A whole activity sample is flagged when the
// fraction of trigger-positive frames exceeds a threshold. The detector
// is trained on clean samples plus triggered twins — the defender can
// synthesize these with the same RF simulation the attacker uses.
#pragma once

#include <cstdint>

#include "har/dataset.h"
#include "nn/sequential.h"

namespace mmhar::defense {

struct DetectorConfig {
  std::size_t height = 32;
  std::size_t width = 32;
  std::size_t epochs = 10;
  std::size_t batch_size = 32;
  float learning_rate = 1.5e-3F;
  double frame_flag_threshold = 0.5;  ///< per-frame positive probability
  double sample_flag_fraction = 0.3;  ///< fraction of flagged frames
  std::uint64_t seed = 77;
};

struct DetectorMetrics {
  double frame_accuracy = 0.0;      ///< per-frame clean/triggered accuracy
  double sample_recall = 0.0;       ///< triggered samples flagged
  double sample_false_positive = 0.0;  ///< clean samples flagged
};

class TriggerDetector {
 public:
  explicit TriggerDetector(const DetectorConfig& config);

  /// Train on per-frame examples drawn from `clean` (label 0) and
  /// `triggered` (label 1) datasets.
  void train(const har::Dataset& clean, const har::Dataset& triggered);

  /// Probability that a single frame [H, W] contains a trigger.
  double frame_probability(const Tensor& frame);

  /// Fraction of a sample's frames flagged as triggered.
  double flagged_fraction(const Tensor& sample_heatmaps);

  /// Whole-sample decision.
  bool is_triggered(const Tensor& sample_heatmaps);

  /// Evaluate on held-out datasets.
  DetectorMetrics evaluate(const har::Dataset& clean,
                           const har::Dataset& triggered);

  const DetectorConfig& config() const { return config_; }

 private:
  Tensor frames_batch(const har::Dataset& ds,
                      const std::vector<std::size_t>& sample_indices,
                      const std::vector<std::size_t>& frame_indices) const;

  DetectorConfig config_;
  nn::Sequential net_;
};

}  // namespace mmhar::defense
