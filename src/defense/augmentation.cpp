#include "defense/augmentation.h"

#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace mmhar::defense {

har::Dataset augment_with_correct_labels(
    const har::Dataset& poisoned_train,
    const har::Dataset& triggered_correct, std::size_t victim_label,
    const AugmentationConfig& config) {
  MMHAR_REQUIRE(config.augmentation_rate >= 0.0, "negative rate");
  har::Dataset augmented = poisoned_train;

  const auto victims = poisoned_train.indices_of_label(victim_label);
  // Note: some victim samples were re-labeled by the poisoner, so size
  // the augmentation against the triggered pool when victims are scarce.
  const std::size_t base =
      std::max(victims.size(), triggered_correct.size() / 2);
  std::size_t n_aug = static_cast<std::size_t>(
      std::lround(config.augmentation_rate * static_cast<double>(base)));
  n_aug = std::min(n_aug, triggered_correct.size());
  if (n_aug == 0) return augmented;

  Rng rng(config.seed);
  const auto chosen =
      rng.sample_without_replacement(triggered_correct.size(), n_aug);
  for (const std::size_t i : chosen) {
    har::Sample s = triggered_correct.sample(i);
    s.label = victim_label;  // the true activity, not the attacker's target
    augmented.add(std::move(s));
  }
  return augmented;
}

}  // namespace mmhar::defense
