#include "defense/trigger_detector.h"

#include <algorithm>

#include "common/logging.h"
#include "nn/activation.h"
#include "nn/conv.h"
#include "nn/dense.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"

namespace mmhar::defense {

TriggerDetector::TriggerDetector(const DetectorConfig& config)
    : config_(config) {
  MMHAR_REQUIRE(config.height % 8 == 0 && config.width % 8 == 0,
                "detector input dims must be divisible by 8");
  Rng rng(config.seed);
  net_.emplace<nn::Conv2D>(1, 8, 5, 2, 2, rng);
  net_.emplace<nn::ReLU>();
  net_.emplace<nn::Conv2D>(8, 8, 3, 2, 1, rng);
  net_.emplace<nn::ReLU>();
  net_.emplace<nn::MaxPool2D>(2);
  net_.emplace<nn::Flatten>();
  const std::size_t spatial = (config.height / 8) * (config.width / 8) * 8;
  net_.emplace<nn::Dense>(spatial, 32, rng);
  net_.emplace<nn::ReLU>();
  net_.emplace<nn::Dense>(32, 2, rng);
}

void TriggerDetector::train(const har::Dataset& clean,
                            const har::Dataset& triggered) {
  MMHAR_REQUIRE(!clean.empty() && !triggered.empty(),
                "need both clean and triggered training data");

  // Build a balanced per-frame example list: (dataset, sample, frame).
  struct Example {
    const har::Dataset* ds;
    std::size_t sample;
    std::size_t frame;
    std::size_t label;
  };
  std::vector<Example> examples;
  const std::size_t frames = clean.sample(0).heatmaps.dim(0);
  const std::size_t per_class =
      std::min(clean.size(), triggered.size()) * frames;

  Rng rng(config_.seed ^ 0xDEF);
  const auto add_examples = [&](const har::Dataset& ds, std::size_t label) {
    std::size_t added = 0;
    while (added < per_class) {
      const std::size_t s = rng.index(ds.size());
      const std::size_t f = rng.index(ds.sample(s).heatmaps.dim(0));
      examples.push_back(Example{&ds, s, f, label});
      ++added;
    }
  };
  add_examples(clean, 0);
  add_examples(triggered, 1);

  std::vector<std::size_t> order(examples.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  nn::Adam optimizer(config_.learning_rate);
  const auto params = net_.parameters();
  const auto grads = net_.gradients();
  const std::size_t hw = config_.height * config_.width;

  std::vector<std::size_t> labels;  // hoisted batch-label scratch
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.shuffle(order);
    double loss_sum = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < order.size();
         start += config_.batch_size) {
      const std::size_t end =
          std::min(order.size(), start + config_.batch_size);
      const std::size_t bsz = end - start;
      Tensor batch({bsz, 1, config_.height, config_.width});
      labels.assign(bsz, 0);
      for (std::size_t b = 0; b < bsz; ++b) {
        const Example& e = examples[order[start + b]];
        const Tensor& h = e.ds->sample(e.sample).heatmaps;
        MMHAR_CHECK((e.frame + 1) * hw <= h.size() &&
                    (b + 1) * hw <= batch.size());
        std::copy(h.data() + e.frame * hw, h.data() + (e.frame + 1) * hw,
                  batch.data() + b * hw);
        labels[b] = e.label;
      }
      net_.zero_gradients();
      const Tensor logits = net_.forward(batch, /*training=*/true);
      const auto loss = nn::softmax_cross_entropy(logits, labels);
      net_.backward(loss.grad_logits);
      nn::clip_gradient_norm(grads, 5.0F);
      optimizer.step(params, grads);
      loss_sum += loss.loss;
      ++batches;
    }
    MMHAR_LOG(Debug) << "detector epoch " << epoch + 1 << " loss "
                     << loss_sum / static_cast<double>(std::max<std::size_t>(1, batches));
  }
}

double TriggerDetector::frame_probability(const Tensor& frame) {
  MMHAR_REQUIRE(frame.rank() == 2 && frame.dim(0) == config_.height &&
                    frame.dim(1) == config_.width,
                "frame shape mismatch");
  const Tensor logits = net_.forward(
      frame.reshaped({1, 1, config_.height, config_.width}), false);
  const Tensor probs = softmax(logits.reshaped({2}));
  return probs[1];
}

double TriggerDetector::flagged_fraction(const Tensor& sample_heatmaps) {
  MMHAR_REQUIRE(sample_heatmaps.rank() == 3, "expected [T, H, W]");
  const std::size_t frames = sample_heatmaps.dim(0);
  const std::size_t hw = config_.height * config_.width;
  Tensor batch({frames, 1, config_.height, config_.width});
  std::copy(sample_heatmaps.data(), sample_heatmaps.data() + frames * hw,
            batch.data());
  const Tensor logits = net_.forward(batch, false);
  std::size_t flagged = 0;
  for (std::size_t f = 0; f < frames; ++f) {
    const float l0 = logits.at(f, 0);
    const float l1 = logits.at(f, 1);
    const double p1 = 1.0 / (1.0 + std::exp(static_cast<double>(l0 - l1)));
    if (p1 > config_.frame_flag_threshold) ++flagged;
  }
  return static_cast<double>(flagged) / static_cast<double>(frames);
}

bool TriggerDetector::is_triggered(const Tensor& sample_heatmaps) {
  return flagged_fraction(sample_heatmaps) > config_.sample_flag_fraction;
}

DetectorMetrics TriggerDetector::evaluate(const har::Dataset& clean,
                                          const har::Dataset& triggered) {
  DetectorMetrics m;
  std::size_t frame_correct = 0;
  std::size_t frame_total = 0;
  std::size_t clean_flagged = 0;
  std::size_t triggered_flagged = 0;

  for (std::size_t i = 0; i < clean.size(); ++i) {
    const double frac = flagged_fraction(clean.sample(i).heatmaps);
    const std::size_t frames = clean.sample(i).heatmaps.dim(0);
    frame_correct += static_cast<std::size_t>(
        std::lround((1.0 - frac) * static_cast<double>(frames)));
    frame_total += frames;
    if (frac > config_.sample_flag_fraction) ++clean_flagged;
  }
  for (std::size_t i = 0; i < triggered.size(); ++i) {
    const double frac = flagged_fraction(triggered.sample(i).heatmaps);
    const std::size_t frames = triggered.sample(i).heatmaps.dim(0);
    frame_correct += static_cast<std::size_t>(
        std::lround(frac * static_cast<double>(frames)));
    frame_total += frames;
    if (frac > config_.sample_flag_fraction) ++triggered_flagged;
  }

  if (frame_total > 0)
    m.frame_accuracy =
        static_cast<double>(frame_correct) / static_cast<double>(frame_total);
  if (!triggered.empty())
    m.sample_recall = static_cast<double>(triggered_flagged) /
                      static_cast<double>(triggered.size());
  if (!clean.empty())
    m.sample_false_positive =
        static_cast<double>(clean_flagged) / static_cast<double>(clean.size());
  return m;
}

}  // namespace mmhar::defense
