#include "tensor/gemm.h"

#include <algorithm>
#include <vector>

#include "common/thread_pool.h"

namespace mmhar {
namespace {

constexpr std::size_t kBlockK = 128;
constexpr std::size_t kBlockN = 256;
// Below this many multiply-adds the threading overhead dominates.
constexpr std::size_t kParallelThreshold = 1u << 18;

void scale_rows(std::size_t m, std::size_t n, float beta, float* c) {
  if (beta == 1.0F) return;
  if (beta == 0.0F) {
    std::fill(c, c + m * n, 0.0F);
    return;
  }
  for (std::size_t i = 0; i < m * n; ++i) c[i] *= beta;
}

// Core row-range kernel: C[lo:hi, :] += alpha * A[lo:hi, :] * B.
void gemm_rows(std::size_t lo, std::size_t hi, std::size_t k, std::size_t n,
               float alpha, const float* a, const float* b, float* c) {
  for (std::size_t kk = 0; kk < k; kk += kBlockK) {
    const std::size_t kend = std::min(k, kk + kBlockK);
    for (std::size_t nn = 0; nn < n; nn += kBlockN) {
      const std::size_t nend = std::min(n, nn + kBlockN);
      for (std::size_t i = lo; i < hi; ++i) {
        const float* arow = a + i * k;
        float* crow = c + i * n;
        for (std::size_t p = kk; p < kend; ++p) {
          const float av = alpha * arow[p];
          if (av == 0.0F) continue;
          const float* brow = b + p * n;
          for (std::size_t j = nn; j < nend; ++j) crow[j] += av * brow[j];
        }
      }
    }
  }
}

}  // namespace

void sgemm(std::size_t m, std::size_t k, std::size_t n, float alpha,
           const float* a, const float* b, float beta, float* c) {
  scale_rows(m, n, beta, c);
  if (m == 0 || n == 0 || k == 0 || alpha == 0.0F) return;
  if (m * n * k < kParallelThreshold || m == 1) {
    gemm_rows(0, m, k, n, alpha, a, b, c);
    return;
  }
  global_pool().parallel_for_chunked(
      0, m, [&](std::size_t lo, std::size_t hi) {
        gemm_rows(lo, hi, k, n, alpha, a, b, c);
      });
}

void sgemm_at(std::size_t m, std::size_t k, std::size_t n, float alpha,
              const float* a, const float* b, float beta, float* c) {
  // Materialize A^T once; keeps the hot kernel contiguous.
  std::vector<float> at(m * k);
  for (std::size_t p = 0; p < k; ++p)
    for (std::size_t i = 0; i < m; ++i) at[i * k + p] = a[p * m + i];
  sgemm(m, k, n, alpha, at.data(), b, beta, c);
}

void sgemm_bt(std::size_t m, std::size_t k, std::size_t n, float alpha,
              const float* a, const float* b, float beta, float* c) {
  std::vector<float> bt(k * n);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t p = 0; p < k; ++p) bt[p * n + j] = b[j * k + p];
  sgemm(m, k, n, alpha, a, bt.data(), beta, c);
}

}  // namespace mmhar
