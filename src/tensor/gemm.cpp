#include "tensor/gemm.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"

namespace mmhar {
namespace {

// Register-tile geometry. A kMR x kNR accumulator block (4 x 32 floats =
// eight 16-lane vectors) lives in registers across an entire k-block; the
// microkernel reads one packed A column (kMR floats, broadcast) and one
// packed B row (kNR floats, two vector loads) per k step. Tails are
// handled by zero-padding the packed operands, never by branching inside
// the FMA loop.
constexpr std::size_t kMR = 4;
constexpr std::size_t kNR = 32;
// Cache blocking: a kBlockK x kBlockN slice of B is packed once per block
// and streamed through every row tile (<= 1 MiB, L2-resident).
constexpr std::size_t kBlockK = 256;
constexpr std::size_t kBlockN = 1024;
// Below this many multiply-adds the threading overhead dominates.
constexpr std::size_t kParallelThreshold = 1u << 18;

constexpr std::size_t round_up(std::size_t v, std::size_t to) {
  return (v + to - 1) / to * to;
}

void scale_rows(std::size_t m, std::size_t n, float beta, float* c) {
  if (beta == 1.0F) return;
  if (beta == 0.0F) {
    std::fill(c, c + m * n, 0.0F);
    return;
  }
  for (std::size_t i = 0; i < m * n; ++i) c[i] *= beta;
}

// Operand storage order handed to the packing routines.
enum class Layout {
  kRowMajor,    // a[i * ld + p], b[p * ld + j]
  kTransposed,  // a[p * ld + i], b[j * ld + p]
};

// Pack rows [i0, i0+mr) x cols [kk, kend) of A into ap[p * kMR + r],
// zero-padding rows mr..kMR so the microkernel never branches on mr.
void pack_a_tile(Layout layout, const float* a, std::size_t lda,
                 std::size_t i0, std::size_t mr, std::size_t kk,
                 std::size_t kend, float* ap) {
  const std::size_t kc = kend - kk;
  if (layout == Layout::kRowMajor) {
    for (std::size_t r = 0; r < kMR; ++r) {
      if (r < mr) {
        const float* src = a + (i0 + r) * lda + kk;
        for (std::size_t p = 0; p < kc; ++p) ap[p * kMR + r] = src[p];
      } else {
        for (std::size_t p = 0; p < kc; ++p) ap[p * kMR + r] = 0.0F;
      }
    }
  } else {
    for (std::size_t p = 0; p < kc; ++p) {
      const float* src = a + (kk + p) * lda + i0;
      for (std::size_t r = 0; r < kMR; ++r)
        ap[p * kMR + r] = r < mr ? src[r] : 0.0F;
    }
  }
}

// Pack the [kk, kend) x [nn, nend) slice of B into kNR-wide panels:
// panel jt/kNR at bp + jt * kc, element [p * kNR + jj], zero-padded to
// kNR columns.
void pack_b_panels(Layout layout, const float* b, std::size_t ldb,
                   std::size_t kk, std::size_t kend, std::size_t nn,
                   std::size_t nend, float* bp) {
  const std::size_t kc = kend - kk;
  const std::size_t nc = nend - nn;
  for (std::size_t jt = 0; jt < nc; jt += kNR) {
    const std::size_t nr = std::min(kNR, nc - jt);
    float* panel = bp + jt * kc;
    if (layout == Layout::kRowMajor) {
      for (std::size_t p = 0; p < kc; ++p) {
        const float* src = b + (kk + p) * ldb + nn + jt;
        float* dst = panel + p * kNR;
        for (std::size_t jj = 0; jj < nr; ++jj) dst[jj] = src[jj];
        for (std::size_t jj = nr; jj < kNR; ++jj) dst[jj] = 0.0F;
      }
    } else {
      for (std::size_t p = 0; p < kc; ++p) {
        float* dst = panel + p * kNR;
        for (std::size_t jj = 0; jj < nr; ++jj)
          dst[jj] = b[(nn + jt + jj) * ldb + kk + p];
        for (std::size_t jj = nr; jj < kNR; ++jj) dst[jj] = 0.0F;
      }
    }
  }
}

// C[0:mr, 0:nr] += alpha * sum_p ap[p][:] (x) bp[p][:]. The accumulator
// tile is computed over the full padded kMR x kNR footprint (padded lanes
// multiply zeros); only the valid mr x nr corner is written back.
void micro_kernel(std::size_t kc, const float* ap, const float* bp,
                  float alpha, float* c, std::size_t ldc, std::size_t mr,
                  std::size_t nr) {
  float acc[kMR][kNR] = {};
  for (std::size_t p = 0; p < kc; ++p) {
    const float* arow = ap + p * kMR;
    const float* brow = bp + p * kNR;
    for (std::size_t r = 0; r < kMR; ++r) {
      const float av = arow[r];
      for (std::size_t j = 0; j < kNR; ++j) acc[r][j] += av * brow[j];
    }
  }
  if (mr == kMR && nr == kNR) {
    for (std::size_t r = 0; r < kMR; ++r) {
      float* crow = c + r * ldc;
      for (std::size_t j = 0; j < kNR; ++j) crow[j] += alpha * acc[r][j];
    }
  } else {
    for (std::size_t r = 0; r < mr; ++r) {
      float* crow = c + r * ldc;
      for (std::size_t j = 0; j < nr; ++j) crow[j] += alpha * acc[r][j];
    }
  }
}

// Row-tile range [tile_lo, tile_hi) of one (kk, nn) block. `apacked`
// (optional) supplies pre-packed A tiles; otherwise tiles are packed
// on the fly into a stack buffer.
void gemm_block_rows(Layout la, const float* a, std::size_t lda,
                     const float* apacked, std::size_t m, std::size_t k,
                     std::size_t kk, std::size_t kend, std::size_t nn,
                     std::size_t nend, const float* bp, float alpha, float* c,
                     std::size_t ldc, std::size_t tile_lo,
                     std::size_t tile_hi) {
  const std::size_t kc = kend - kk;
  const std::size_t nc = nend - nn;
  alignas(64) float abuf[kMR * kBlockK];
  for (std::size_t it = tile_lo; it < tile_hi; ++it) {
    const std::size_t i0 = it * kMR;
    const std::size_t mr = std::min(kMR, m - i0);
    const float* ap;
    if (apacked != nullptr) {
      ap = apacked + it * kMR * k + kk * kMR;
    } else {
      pack_a_tile(la, a, lda, i0, mr, kk, kend, abuf);
      ap = abuf;
    }
    for (std::size_t jt = 0; jt < nc; jt += kNR) {
      const std::size_t nr = std::min(kNR, nc - jt);
      micro_kernel(kc, ap, bp + jt * kc, alpha, c + i0 * ldc + nn + jt, ldc,
                   mr, nr);
    }
  }
}

// Grow-only thread-local B panel buffer, sized for one (kBlockK, kBlockN)
// cache block. Steady-state calls at a previously seen (or smaller) shape
// return the existing buffer without touching the allocator, which is what
// the streaming batcher's zero-alloc contract depends on.
float* ensure_b_panel_buffer(std::size_t k, std::size_t n) {
  thread_local std::vector<float> bbuf;
  const std::size_t need = std::min(k, kBlockK) *
                           round_up(std::min(n, kBlockN), kNR);
  if (bbuf.size() < need) {
    // mmhar-rtcheck: allow(alloc) — grow-once thread-local workspace; a
    // steady-state call at a warmed shape takes the branch, never the grow.
    bbuf.resize(need);
  }
  return bbuf.data();
}

// Serial driver core: every block runs on the calling thread, so this path
// never references the thread pool — the real-time checker relies on that
// separation, not on a runtime flag. Per output element the reduction
// order is fixed by the (kk ascending, p ascending) block order, so the
// threaded driver below (which partitions only row tiles) is bit-identical.
void gemm_driver_serial(std::size_t m, std::size_t k, std::size_t n,
                        float alpha, Layout la, const float* a,
                        std::size_t lda, const float* apacked, Layout lb,
                        const float* b, std::size_t ldb,
                        float* c) MMHAR_REALTIME {
  const std::size_t row_tiles = (m + kMR - 1) / kMR;
  float* const bp = ensure_b_panel_buffer(k, n);
  for (std::size_t kk = 0; kk < k; kk += kBlockK) {
    const std::size_t kend = std::min(k, kk + kBlockK);
    for (std::size_t nn = 0; nn < n; nn += kBlockN) {
      const std::size_t nend = std::min(n, nn + kBlockN);
      pack_b_panels(lb, b, ldb, kk, kend, nn, nend, bp);
      gemm_block_rows(la, a, lda, apacked, m, k, kk, kend, nn, nend, bp,
                      alpha, c, n, 0, row_tiles);
    }
  }
}

// Threaded driver. Small products fall through to the serial core; large
// ones split row tiles across the global pool. The B panel buffer is
// resolved on the calling thread — the lambda below may run on pool
// workers, whose own thread_local buffer is a different (empty) one.
void gemm_driver(std::size_t m, std::size_t k, std::size_t n, float alpha,
                 Layout la, const float* a, std::size_t lda,
                 const float* apacked, Layout lb, const float* b,
                 std::size_t ldb, float* c) {
  const std::size_t row_tiles = (m + kMR - 1) / kMR;
  if (m * n * k < kParallelThreshold || row_tiles <= 1) {
    gemm_driver_serial(m, k, n, alpha, la, a, lda, apacked, lb, b, ldb, c);
    return;
  }
  float* const bp = ensure_b_panel_buffer(k, n);
  for (std::size_t kk = 0; kk < k; kk += kBlockK) {
    const std::size_t kend = std::min(k, kk + kBlockK);
    for (std::size_t nn = 0; nn < n; nn += kBlockN) {
      const std::size_t nend = std::min(n, nn + kBlockN);
      pack_b_panels(lb, b, ldb, kk, kend, nn, nend, bp);
      global_pool().parallel_for_chunked(
          0, row_tiles, [&, bp](std::size_t lo, std::size_t hi) {
            gemm_block_rows(la, a, lda, apacked, m, k, kk, kend, nn, nend,
                            bp, alpha, c, n, lo, hi);
          });
    }
  }
}

// Single-row product: C[1 x n] += alpha * a[k] * B. Skips packing — the
// padded 4-row tile would waste 3/4 of the FMA throughput, and SHAP-style
// per-sample forwards hit this shape thousands of times.
void gemv_row(std::size_t k, std::size_t n, float alpha, const float* a,
              const float* b, float* c) {
  for (std::size_t p = 0; p < k; ++p) {
    const float av = alpha * a[p];
    const float* brow = b + p * n;
    for (std::size_t j = 0; j < n; ++j) c[j] += av * brow[j];
  }
}

}  // namespace

void sgemm(std::size_t m, std::size_t k, std::size_t n, float alpha,
           const float* a, const float* b, float beta, float* c) {
  scale_rows(m, n, beta, c);
  if (m == 0 || n == 0 || k == 0 || alpha == 0.0F) return;
  if (m == 1) {
    gemv_row(k, n, alpha, a, b, c);
    return;
  }
  gemm_driver(m, k, n, alpha, Layout::kRowMajor, a, k, nullptr,
              Layout::kRowMajor, b, n, c);
}

void sgemm_at(std::size_t m, std::size_t k, std::size_t n, float alpha,
              const float* a, const float* b, float beta, float* c) {
  scale_rows(m, n, beta, c);
  if (m == 0 || n == 0 || k == 0 || alpha == 0.0F) return;
  gemm_driver(m, k, n, alpha, Layout::kTransposed, a, m, nullptr,
              Layout::kRowMajor, b, n, c);
}

void sgemm_bt(std::size_t m, std::size_t k, std::size_t n, float alpha,
              const float* a, const float* b, float beta, float* c) {
  scale_rows(m, n, beta, c);
  if (m == 0 || n == 0 || k == 0 || alpha == 0.0F) return;
  gemm_driver(m, k, n, alpha, Layout::kRowMajor, a, k, nullptr,
              Layout::kTransposed, b, k, c);
}

namespace {

PackedA pack_a_impl(Layout layout, std::size_t m, std::size_t k,
                    const float* a) {
  PackedA packed;
  packed.m = m;
  packed.k = k;
  const std::size_t row_tiles = (m + kMR - 1) / kMR;
  packed.data.resize(row_tiles * kMR * k);
  MMHAR_REQUIRE(packed.data.size() == row_tiles * kMR * k,
                "packed-A buffer must cover every row tile");
  for (std::size_t it = 0; it < row_tiles; ++it) {
    const std::size_t i0 = it * kMR;
    const std::size_t mr = std::min(kMR, m - i0);
    pack_a_tile(layout, a, layout == Layout::kRowMajor ? k : m, i0, mr, 0, k,
                packed.data.data() + it * kMR * k);
  }
  return packed;
}

}  // namespace

PackedA pack_a(std::size_t m, std::size_t k, const float* a) {
  return pack_a_impl(Layout::kRowMajor, m, k, a);
}

PackedA pack_at(std::size_t m, std::size_t k, const float* a) {
  return pack_a_impl(Layout::kTransposed, m, k, a);
}

void sgemm_packed_a(const PackedA& a, std::size_t n, float alpha,
                    const float* b, float beta, float* c) {
  scale_rows(a.m, n, beta, c);
  if (a.m == 0 || n == 0 || a.k == 0 || alpha == 0.0F) return;
  gemm_driver(a.m, a.k, n, alpha, Layout::kRowMajor, nullptr, a.k,
              a.data.data(), Layout::kRowMajor, b, n, c);
}

void sgemm_packed_a_serial(const PackedA& a, std::size_t n, float alpha,
                           const float* b, float beta, float* c) {
  scale_rows(a.m, n, beta, c);
  if (a.m == 0 || n == 0 || a.k == 0 || alpha == 0.0F) return;
  gemm_driver_serial(a.m, a.k, n, alpha, Layout::kRowMajor, nullptr, a.k,
                     a.data.data(), Layout::kRowMajor, b, n, c);
}

namespace {

PackedB pack_b_impl(Layout layout, std::size_t k, std::size_t n,
                    const float* b) {
  MMHAR_REQUIRE(k > 0 && k <= kBlockK && n > 0 && n <= kBlockN,
                "pack_b: operand must fit one cache block (k <= "
                    << kBlockK << ", n <= " << kBlockN << "), got k=" << k
                    << " n=" << n);
  PackedB packed;
  packed.k = k;
  packed.n = n;
  packed.data.resize(k * round_up(n, kNR));
  // Single (kk=0, nn=0) block: the packed image is byte-identical to what
  // gemm_driver builds per call, so sgemm_packed_b replays the exact same
  // microkernel inputs as sgemm/sgemm_bt.
  pack_b_panels(layout, b, layout == Layout::kRowMajor ? n : k, 0, k, 0, n,
                packed.data.data());
  return packed;
}

}  // namespace

PackedB pack_b(std::size_t k, std::size_t n, const float* b) {
  return pack_b_impl(Layout::kRowMajor, k, n, b);
}

PackedB pack_bt(std::size_t k, std::size_t n, const float* b) {
  return pack_b_impl(Layout::kTransposed, k, n, b);
}

void sgemm_packed_b(std::size_t m, float alpha, const float* a,
                    const PackedB& b, float beta, float* c) {
  scale_rows(m, b.n, beta, c);
  if (m == 0 || b.n == 0 || b.k == 0 || alpha == 0.0F) return;
  const std::size_t row_tiles = (m + kMR - 1) / kMR;
  MMHAR_CHECK(b.data.size() == b.k * round_up(b.n, kNR));
  gemm_block_rows(Layout::kRowMajor, a, b.k, nullptr, m, b.k, 0, b.k, 0, b.n,
                  b.data.data(), alpha, c, b.n, 0, row_tiles);
}

}  // namespace mmhar
