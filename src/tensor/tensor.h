// Dense row-major float tensor.
//
// `Tensor` is the single numeric container shared by the DSP pipeline
// (real heatmaps), the neural-network library (activations, weights,
// gradients), and the attack code (feature vectors). It is a value type:
// copying copies the buffer, moving steals it. Shapes are dynamic
// (rank 1..4 in practice). All indexing is bounds-checked in debug-ish
// paths via MMHAR_CHECK; hot loops use raw data() pointers.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/serialize.h"

namespace mmhar {

class Tensor {
 public:
  /// Empty (rank-0, zero elements) tensor.
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(std::vector<std::size_t> shape);
  Tensor(std::initializer_list<std::size_t> shape);

  /// Build from explicit data (size must match shape product).
  Tensor(std::vector<std::size_t> shape, std::vector<float> data);

  static Tensor zeros(std::vector<std::size_t> shape) {
    return Tensor(std::move(shape));
  }
  static Tensor full(std::vector<std::size_t> shape, float value);
  /// I.i.d. N(mean, stddev) entries.
  static Tensor randn(std::vector<std::size_t> shape, Rng& rng,
                      float mean = 0.0F, float stddev = 1.0F);
  /// I.i.d. U[lo, hi) entries.
  static Tensor rand_uniform(std::vector<std::size_t> shape, Rng& rng,
                             float lo, float hi);

  const std::vector<std::size_t>& shape() const { return shape_; }
  std::size_t rank() const { return shape_.size(); }
  std::size_t size() const { return data_.size(); }
  std::size_t dim(std::size_t i) const {
    MMHAR_CHECK(i < shape_.size());
    return shape_[i];
  }

  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> flat() { return {data_.data(), data_.size()}; }
  std::span<const float> flat() const { return {data_.data(), data_.size()}; }

  float& operator[](std::size_t i) {
    MMHAR_CHECK(i < data_.size());
    return data_[i];
  }
  float operator[](std::size_t i) const {
    MMHAR_CHECK(i < data_.size());
    return data_[i];
  }

  /// Multi-dimensional accessors (rank-checked).
  float& at(std::size_t i);
  float at(std::size_t i) const;
  float& at(std::size_t i, std::size_t j);
  float at(std::size_t i, std::size_t j) const;
  float& at(std::size_t i, std::size_t j, std::size_t k);
  float at(std::size_t i, std::size_t j, std::size_t k) const;
  float& at(std::size_t i, std::size_t j, std::size_t k, std::size_t l);
  float at(std::size_t i, std::size_t j, std::size_t k, std::size_t l) const;

  /// Reinterpret with a new shape of identical element count.
  Tensor reshaped(std::vector<std::size_t> new_shape) const;

  /// In-place fill.
  void fill(float value);
  /// Set all entries to zero (keeps shape).
  void zero() { fill(0.0F); }

  // ---- In-place arithmetic (shapes must match for tensor operands) ----
  Tensor& operator+=(const Tensor& rhs);
  Tensor& operator-=(const Tensor& rhs);
  Tensor& operator*=(float s);
  /// this += s * rhs (axpy).
  void add_scaled(const Tensor& rhs, float s);
  /// Hadamard product in place.
  void mul_elementwise(const Tensor& rhs);

  // ---- Reductions ----
  float sum() const;
  float mean() const;
  float min() const;
  float max() const;
  /// Euclidean norm of the flattened tensor.
  float l2_norm() const;
  /// Index of maximum element (first on ties).
  std::size_t argmax() const;

  /// Euclidean distance between two same-shaped tensors.
  static float l2_distance(const Tensor& a, const Tensor& b);
  /// Dot product of flattened tensors.
  static float dot(const Tensor& a, const Tensor& b);

  // ---- Serialization ----
  void save(BinaryWriter& w) const;
  static Tensor load(BinaryReader& r);

  /// Human-readable "[2, 3, 4]" string.
  std::string shape_string() const;

 private:
  std::size_t flat_index(std::size_t i, std::size_t j) const {
    return i * shape_[1] + j;
  }

  std::vector<std::size_t> shape_;
  std::vector<float> data_;
};

/// Out-of-place arithmetic helpers.
Tensor operator+(Tensor lhs, const Tensor& rhs);
Tensor operator-(Tensor lhs, const Tensor& rhs);
Tensor operator*(Tensor lhs, float s);

}  // namespace mmhar
