// Single-precision matrix multiply kernels.
//
// The NN library routes every dense contraction (Conv2D via im2col, Dense,
// LSTM gate blocks) through these. The kernel is a cache-blocked triple
// loop with a k-innermost accumulation order that auto-vectorizes well;
// large products are split row-wise across the global thread pool.
#pragma once

#include <cstddef>

namespace mmhar {

/// C[m x n] = alpha * A[m x k] * B[k x n] + beta * C. Row-major, no aliasing.
void sgemm(std::size_t m, std::size_t k, std::size_t n, float alpha,
           const float* a, const float* b, float beta, float* c);

/// C[m x n] += A^T[m x k] * B[k x n] where A is stored k x m (row-major).
/// Used by backward passes that need the transpose of a stored weight.
void sgemm_at(std::size_t m, std::size_t k, std::size_t n, float alpha,
              const float* a, const float* b, float beta, float* c);

/// C[m x n] += A[m x k] * B^T[k x n] where B is stored n x k (row-major).
void sgemm_bt(std::size_t m, std::size_t k, std::size_t n, float alpha,
              const float* a, const float* b, float beta, float* c);

}  // namespace mmhar
