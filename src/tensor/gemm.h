// Single-precision matrix multiply kernels.
//
// The NN library routes every dense contraction (Conv2D via im2col, Dense,
// LSTM gate blocks) through these. The implementation is a packed,
// register-tiled microkernel: B is packed into cache-resident panels of
// width kNR, A into zero-padded kMR-row tiles, and a kMR x kNR accumulator
// tile stays in registers across each k-block so the inner loop is
// branch-free FMA code. Large products are split across row tiles on the
// global thread pool; the per-element reduction order is fixed by the
// k-blocking alone, so results are bit-identical for any MMHAR_THREADS.
#pragma once

#include <cstddef>
#include <vector>

namespace mmhar {

/// C[m x n] = alpha * A[m x k] * B[k x n] + beta * C. Row-major, no aliasing.
void sgemm(std::size_t m, std::size_t k, std::size_t n, float alpha,
           const float* a, const float* b, float beta, float* c);

/// C[m x n] += A^T[m x k] * B[k x n] where A is stored k x m (row-major).
/// Used by backward passes that need the transpose of a stored weight.
/// Packs A directly from the transposed storage; no materialized copy.
void sgemm_at(std::size_t m, std::size_t k, std::size_t n, float alpha,
              const float* a, const float* b, float beta, float* c);

/// C[m x n] += A[m x k] * B^T[k x n] where B is stored n x k (row-major).
/// Packs B directly from the transposed storage; no materialized copy.
void sgemm_bt(std::size_t m, std::size_t k, std::size_t n, float alpha,
              const float* a, const float* b, float beta, float* c);

/// A matrix pre-packed into the microkernel's A-tile layout (kMR-row tiles,
/// k-major within a tile, tail rows zero-padded). Callers that multiply
/// the same left operand against many right-hand sides — Conv2D replaying
/// one weight matrix over every im2col'd batch image, for instance — pack
/// once and amortize the packing traffic across all products.
struct PackedA {
  std::size_t m = 0;
  std::size_t k = 0;
  std::vector<float> data;
};

/// Pack row-major A[m x k] into microkernel tile layout.
PackedA pack_a(std::size_t m, std::size_t k, const float* a);

/// Pack A^T (logical m x k) where A is stored k x m row-major.
PackedA pack_at(std::size_t m, std::size_t k, const float* a);

/// C[a.m x n] = alpha * A * B[a.k x n] + beta * C with a pre-packed A.
/// Bit-identical to sgemm()/sgemm_at() on the same operands for m > 1
/// (m == 1 takes a separate single-row fast path in sgemm).
void sgemm_packed_a(const PackedA& a, std::size_t n, float alpha,
                    const float* b, float beta, float* c);

}  // namespace mmhar
