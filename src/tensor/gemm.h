// Single-precision matrix multiply kernels.
//
// The NN library routes every dense contraction (Conv2D via im2col, Dense,
// LSTM gate blocks) through these. The implementation is a packed,
// register-tiled microkernel: B is packed into cache-resident panels of
// width kNR, A into zero-padded kMR-row tiles, and a kMR x kNR accumulator
// tile stays in registers across each k-block so the inner loop is
// branch-free FMA code. Large products are split across row tiles on the
// global thread pool; the per-element reduction order is fixed by the
// k-blocking alone, so results are bit-identical for any MMHAR_THREADS.
#pragma once

#include <cstddef>
#include <vector>

#include "common/thread_annotations.h"

namespace mmhar {

/// C[m x n] = alpha * A[m x k] * B[k x n] + beta * C. Row-major, no aliasing.
void sgemm(std::size_t m, std::size_t k, std::size_t n, float alpha,
           const float* a, const float* b, float beta, float* c);

/// C[m x n] += A^T[m x k] * B[k x n] where A is stored k x m (row-major).
/// Used by backward passes that need the transpose of a stored weight.
/// Packs A directly from the transposed storage; no materialized copy.
void sgemm_at(std::size_t m, std::size_t k, std::size_t n, float alpha,
              const float* a, const float* b, float beta, float* c);

/// C[m x n] += A[m x k] * B^T[k x n] where B is stored n x k (row-major).
/// Packs B directly from the transposed storage; no materialized copy.
void sgemm_bt(std::size_t m, std::size_t k, std::size_t n, float alpha,
              const float* a, const float* b, float beta, float* c);

/// A matrix pre-packed into the microkernel's A-tile layout (kMR-row tiles,
/// k-major within a tile, tail rows zero-padded). Callers that multiply
/// the same left operand against many right-hand sides — Conv2D replaying
/// one weight matrix over every im2col'd batch image, for instance — pack
/// once and amortize the packing traffic across all products.
struct PackedA {
  std::size_t m = 0;
  std::size_t k = 0;
  std::vector<float> data;
};

/// Pack row-major A[m x k] into microkernel tile layout.
PackedA pack_a(std::size_t m, std::size_t k, const float* a);

/// Pack A^T (logical m x k) where A is stored k x m row-major.
PackedA pack_at(std::size_t m, std::size_t k, const float* a);

/// C[a.m x n] = alpha * A * B[a.k x n] + beta * C with a pre-packed A.
/// Bit-identical to sgemm()/sgemm_at() on the same operands for m > 1
/// (m == 1 takes a separate single-row fast path in sgemm).
void sgemm_packed_a(const PackedA& a, std::size_t n, float alpha,
                    const float* b, float beta, float* c);

/// As sgemm_packed_a but guaranteed to run entirely on the calling thread
/// (no pool dispatch) and allocation-free: B panels are packed into a
/// thread-local grow-only buffer. Bit-identical to sgemm_packed_a — the
/// per-element reduction order is fixed by the k-blocking, never by the
/// thread partition. The streaming batcher's conv stage uses this form.
void sgemm_packed_a_serial(const PackedA& a, std::size_t n, float alpha,
                           const float* b, float beta,
                           float* c) MMHAR_REALTIME;

/// A right-hand operand pre-packed into the microkernel's panel layout
/// (kNR-wide column panels, k-major within a panel, tail columns
/// zero-padded). Restricted to operands that fit a single cache block
/// (k <= 256, n <= 1024) so the packed image is exactly what the driver
/// would build per call — inference-sized weight matrices (Dense, LSTM
/// gate blocks, classifier heads) all qualify. Pack once at plan-build
/// time; every later product skips the B-packing traffic entirely, which
/// is the dominant cost of small-m gate GEMMs.
struct PackedB {
  std::size_t k = 0;
  std::size_t n = 0;
  std::vector<float> data;
};

/// Pack row-major B[k x n] into microkernel panel layout.
PackedB pack_b(std::size_t k, std::size_t n, const float* b);

/// Pack B^T (logical k x n) where B is stored n x k row-major — the
/// layout sgemm_bt consumes (weights stored [out x in]).
PackedB pack_bt(std::size_t k, std::size_t n, const float* b);

/// C[m x b.n] = alpha * A[m x b.k] * B + beta * C with a pre-packed B.
/// Runs entirely on the calling thread and performs no heap allocation
/// (A tiles are packed into a stack buffer). Bit-identical to
/// sgemm()/sgemm_bt() on the same operands for any m — there is no
/// single-row fast path here, so micro-batched and per-sample forwards
/// agree to the bit.
void sgemm_packed_b(std::size_t m, float alpha, const float* a,
                    const PackedB& b, float beta, float* c) MMHAR_REALTIME;

}  // namespace mmhar
