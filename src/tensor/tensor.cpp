#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

namespace mmhar {
namespace {

std::size_t product(const std::vector<std::size_t>& shape) {
  std::size_t n = 1;
  for (const auto d : shape) n *= d;
  return shape.empty() ? 0 : n;
}

}  // namespace

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_(std::move(shape)), data_(product(shape_), 0.0F) {}

Tensor::Tensor(std::initializer_list<std::size_t> shape)
    : Tensor(std::vector<std::size_t>(shape)) {}

Tensor::Tensor(std::vector<std::size_t> shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  MMHAR_REQUIRE(data_.size() == product(shape_),
                "data size " << data_.size() << " != shape product "
                             << product(shape_));
}

Tensor Tensor::full(std::vector<std::size_t> shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::randn(std::vector<std::size_t> shape, Rng& rng, float mean,
                     float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_)
    v = static_cast<float>(rng.normal(mean, stddev));
  return t;
}

Tensor Tensor::rand_uniform(std::vector<std::size_t> shape, Rng& rng,
                            float lo, float hi) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

float& Tensor::at(std::size_t i) {
  MMHAR_CHECK(rank() == 1 && i < shape_[0]);
  return data_[i];
}
float Tensor::at(std::size_t i) const {
  MMHAR_CHECK(rank() == 1 && i < shape_[0]);
  return data_[i];
}
float& Tensor::at(std::size_t i, std::size_t j) {
  MMHAR_CHECK(rank() == 2 && i < shape_[0] && j < shape_[1]);
  return data_[flat_index(i, j)];
}
float Tensor::at(std::size_t i, std::size_t j) const {
  MMHAR_CHECK(rank() == 2 && i < shape_[0] && j < shape_[1]);
  return data_[flat_index(i, j)];
}
float& Tensor::at(std::size_t i, std::size_t j, std::size_t k) {
  MMHAR_CHECK(rank() == 3 && i < shape_[0] && j < shape_[1] && k < shape_[2]);
  return data_[(i * shape_[1] + j) * shape_[2] + k];
}
float Tensor::at(std::size_t i, std::size_t j, std::size_t k) const {
  MMHAR_CHECK(rank() == 3 && i < shape_[0] && j < shape_[1] && k < shape_[2]);
  return data_[(i * shape_[1] + j) * shape_[2] + k];
}
float& Tensor::at(std::size_t i, std::size_t j, std::size_t k,
                  std::size_t l) {
  MMHAR_CHECK(rank() == 4 && i < shape_[0] && j < shape_[1] &&
              k < shape_[2] && l < shape_[3]);
  return data_[((i * shape_[1] + j) * shape_[2] + k) * shape_[3] + l];
}
float Tensor::at(std::size_t i, std::size_t j, std::size_t k,
                 std::size_t l) const {
  MMHAR_CHECK(rank() == 4 && i < shape_[0] && j < shape_[1] &&
              k < shape_[2] && l < shape_[3]);
  return data_[((i * shape_[1] + j) * shape_[2] + k) * shape_[3] + l];
}

Tensor Tensor::reshaped(std::vector<std::size_t> new_shape) const {
  MMHAR_REQUIRE(product(new_shape) == size(),
                "reshape " << shape_string() << " to incompatible size");
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.data_ = data_;
  return t;
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

Tensor& Tensor::operator+=(const Tensor& rhs) {
  MMHAR_REQUIRE(same_shape(rhs), "shape mismatch in +=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& rhs) {
  MMHAR_REQUIRE(same_shape(rhs), "shape mismatch in -=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float s) {
  for (auto& v : data_) v *= s;
  return *this;
}

void Tensor::add_scaled(const Tensor& rhs, float s) {
  MMHAR_REQUIRE(same_shape(rhs), "shape mismatch in add_scaled");
  for (std::size_t i = 0; i < data_.size(); ++i)
    data_[i] += s * rhs.data_[i];
}

void Tensor::mul_elementwise(const Tensor& rhs) {
  MMHAR_REQUIRE(same_shape(rhs), "shape mismatch in mul_elementwise");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] *= rhs.data_[i];
}

float Tensor::sum() const {
  double acc = 0.0;
  for (const auto v : data_) acc += v;
  return static_cast<float>(acc);
}

float Tensor::mean() const {
  MMHAR_CHECK(!data_.empty());
  return sum() / static_cast<float>(data_.size());
}

float Tensor::min() const {
  MMHAR_CHECK(!data_.empty());
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
  MMHAR_CHECK(!data_.empty());
  return *std::max_element(data_.begin(), data_.end());
}

float Tensor::l2_norm() const {
  double acc = 0.0;
  for (const auto v : data_) acc += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(acc));
}

std::size_t Tensor::argmax() const {
  MMHAR_CHECK(!data_.empty());
  return static_cast<std::size_t>(
      std::max_element(data_.begin(), data_.end()) - data_.begin());
}

float Tensor::l2_distance(const Tensor& a, const Tensor& b) {
  MMHAR_REQUIRE(a.same_shape(b), "shape mismatch in l2_distance");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.data_.size(); ++i) {
    const double d = static_cast<double>(a.data_[i]) - b.data_[i];
    acc += d * d;
  }
  return static_cast<float>(std::sqrt(acc));
}

float Tensor::dot(const Tensor& a, const Tensor& b) {
  MMHAR_REQUIRE(a.size() == b.size(), "size mismatch in dot");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.data_.size(); ++i)
    acc += static_cast<double>(a.data_[i]) * b.data_[i];
  return static_cast<float>(acc);
}

void Tensor::save(BinaryWriter& w) const {
  w.write_u32(0x544E5352);  // "RSNT" magic
  std::vector<std::uint64_t> shape64(shape_.begin(), shape_.end());
  w.write_u64_vec(shape64);
  w.write_f32_vec(data_);
}

Tensor Tensor::load(BinaryReader& r) {
  const auto magic = r.read_u32();
  if (magic != 0x544E5352) throw IoError("Tensor::load: bad magic");
  const auto shape64 = r.read_u64_vec();
  std::vector<std::size_t> shape(shape64.begin(), shape64.end());
  auto data = r.read_f32_vec();
  return Tensor(std::move(shape), std::move(data));
}

std::string Tensor::shape_string() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) os << ", ";
    os << shape_[i];
  }
  os << "]";
  return os.str();
}

Tensor operator+(Tensor lhs, const Tensor& rhs) {
  lhs += rhs;
  return lhs;
}
Tensor operator-(Tensor lhs, const Tensor& rhs) {
  lhs -= rhs;
  return lhs;
}
Tensor operator*(Tensor lhs, float s) {
  lhs *= s;
  return lhs;
}

}  // namespace mmhar
