#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

namespace mmhar {

Tensor softmax_rows(const Tensor& logits) {
  MMHAR_REQUIRE(logits.rank() == 2, "softmax_rows expects rank-2");
  const std::size_t rows = logits.dim(0);
  const std::size_t cols = logits.dim(1);
  Tensor out({rows, cols});
  for (std::size_t r = 0; r < rows; ++r) {
    const float* in = logits.data() + r * cols;
    float* o = out.data() + r * cols;
    const float mx = *std::max_element(in, in + cols);
    double sum = 0.0;
    for (std::size_t c = 0; c < cols; ++c) {
      o[c] = std::exp(in[c] - mx);
      sum += o[c];
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (std::size_t c = 0; c < cols; ++c) o[c] *= inv;
  }
  return out;
}

Tensor softmax(const Tensor& logits) {
  MMHAR_REQUIRE(logits.rank() == 1, "softmax expects rank-1");
  return softmax_rows(logits.reshaped({1, logits.size()}))
      .reshaped({logits.size()});
}

Tensor relu(const Tensor& x) {
  Tensor out = x;
  for (auto& v : out.flat()) v = std::max(v, 0.0F);
  return out;
}

Tensor tanh_elem(const Tensor& x) {
  Tensor out = x;
  for (auto& v : out.flat()) v = std::tanh(v);
  return out;
}

Tensor sigmoid(const Tensor& x) {
  Tensor out = x;
  for (auto& v : out.flat()) v = 1.0F / (1.0F + std::exp(-v));
  return out;
}

Tensor normalize01(const Tensor& x) {
  Tensor out = x;
  const float lo = x.min();
  const float hi = x.max();
  const float range = hi - lo;
  if (range <= 0.0F) {
    out.zero();
    return out;
  }
  const float inv = 1.0F / range;
  for (auto& v : out.flat()) v = (v - lo) * inv;
  return out;
}

Tensor to_db(const Tensor& x, float eps) {
  Tensor out = x;
  for (auto& v : out.flat())
    v = 20.0F * std::log10(std::max(v, eps));
  return out;
}

Tensor mean_rows(const Tensor& x) {
  MMHAR_REQUIRE(x.rank() == 2, "mean_rows expects rank-2");
  const std::size_t rows = x.dim(0);
  const std::size_t cols = x.dim(1);
  MMHAR_REQUIRE(rows > 0, "mean_rows over empty matrix");
  Tensor out({cols});
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) out[c] += x.at(r, c);
  out *= 1.0F / static_cast<float>(rows);
  return out;
}

Tensor concat(const std::vector<Tensor>& parts) {
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  Tensor out({total});
  std::size_t off = 0;
  for (const auto& p : parts) {
    MMHAR_CHECK(off + p.size() <= out.size());
    std::copy(p.data(), p.data() + p.size(), out.data() + off);
    off += p.size();
  }
  return out;
}

float cosine_similarity(const Tensor& a, const Tensor& b) {
  const float na = a.l2_norm();
  const float nb = b.l2_norm();
  if (na == 0.0F || nb == 0.0F) return 0.0F;
  return Tensor::dot(a, b) / (na * nb);
}

float pearson_correlation(const Tensor& a, const Tensor& b) {
  MMHAR_REQUIRE(a.size() == b.size() && a.size() > 1,
                "pearson needs matching sizes > 1");
  const double ma = a.mean();
  const double mb = b.mean();
  double cov = 0.0;
  double va = 0.0;
  double vb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  if (va == 0.0 || vb == 0.0) return 0.0F;
  return static_cast<float>(cov / std::sqrt(va * vb));
}

}  // namespace mmhar
