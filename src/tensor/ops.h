// Free-function tensor operations shared across modules.
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace mmhar {

/// Row-wise softmax over a [rows x cols] matrix (numerically stabilized).
Tensor softmax_rows(const Tensor& logits);

/// Softmax over a rank-1 tensor.
Tensor softmax(const Tensor& logits);

/// Elementwise ReLU (out of place).
Tensor relu(const Tensor& x);

/// Elementwise hyperbolic tangent.
Tensor tanh_elem(const Tensor& x);

/// Elementwise logistic sigmoid.
Tensor sigmoid(const Tensor& x);

/// Min-max normalize to [0, 1]; constant tensors map to all-zeros.
Tensor normalize01(const Tensor& x);

/// Convert linear magnitudes to dB with a floor: 20*log10(max(x, eps)).
Tensor to_db(const Tensor& x, float eps = 1e-6F);

/// Mean over the first axis of a [n x d] matrix -> rank-1 [d].
Tensor mean_rows(const Tensor& x);

/// Concatenate rank-1 tensors into one rank-1 tensor.
Tensor concat(const std::vector<Tensor>& parts);

/// Cosine similarity of flattened tensors (0 when either norm is 0).
float cosine_similarity(const Tensor& a, const Tensor& b);

/// Pearson correlation of flattened tensors.
float pearson_correlation(const Tensor& a, const Tensor& b);

}  // namespace mmhar
