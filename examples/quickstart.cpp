// Quickstart: the whole pipeline in one minute.
//
//   1. Build a procedural human performing "Push" and simulate the FMCW
//      radar's IF signals (Eq. 3).
//   2. Process them into DRAI heatmaps (Range-FFT, clutter removal,
//      Angle-FFT).
//   3. Train a small CNN-LSTM on a miniature dataset and classify a
//      held-out sample.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "har/dataset.h"
#include "har/trainer.h"

using namespace mmhar;

int main() {
  std::printf("mmhar-backdoor quickstart\n");
  std::printf("=========================\n\n");

  // --- 1. Configure a miniature radar world (fast on any laptop). ---
  har::GeneratorConfig gc;
  gc.num_frames = 16;
  gc.radar.num_chirps = 8;
  gc.radar.num_virtual_antennas = 8;
  gc.environment = radar::EnvironmentKind::Hallway;
  const har::SampleGenerator generator(gc);

  std::printf("radar: %.0f GHz FMCW, %zu virtual antennas, "
              "range resolution %.1f cm\n",
              gc.radar.center_freq_hz() / 1e9,
              gc.radar.num_virtual_antennas,
              100.0 * gc.radar.range_resolution_m());

  // --- 2. Simulate one Push sample and inspect its heatmaps. ---
  har::SampleSpec spec;
  spec.activity = mesh::Activity::Push;
  spec.distance_m = 1.6;
  const Tensor heatmaps = generator.generate(spec);
  std::printf("simulated one %s activity -> DRAI sequence %s\n",
              mesh::activity_name(spec.activity),
              heatmaps.shape_string().c_str());

  // --- 3. Tiny dataset: 2 participants x 3 angles x 4 repetitions. ---
  har::DatasetConfig grid;
  grid.participants = {0, 1};
  grid.distances_m = {1.6};
  grid.angles_deg = {-30.0, 0.0, 30.0};
  grid.repetitions = 3;
  std::printf("\nsimulating %zu training samples...\n",
              grid.total_samples());
  const har::Dataset train = har::build_dataset(generator, grid);

  har::DatasetConfig test_grid = grid;
  test_grid.repetitions = 1;
  test_grid.repetition_offset = 40;
  const har::Dataset test = har::build_dataset(generator, test_grid);

  // --- 4. Train the CNN-LSTM prototype. ---
  har::HarModelConfig mc;
  mc.frames = gc.num_frames;
  mc.conv1_channels = 6;
  mc.conv2_channels = 12;
  mc.feature_dim = 32;
  mc.lstm_hidden = 32;
  har::HarModel model(mc);
  std::printf("training CNN-LSTM (%zu parameters)...\n",
              model.parameter_count());
  har::TrainConfig tc;
  tc.epochs = 12;
  tc.batch_size = 8;
  har::train_model(model, train, tc);

  // --- 5. Evaluate. ---
  const auto cm = har::evaluate_confusion(model, test);
  std::vector<std::string> names;
  for (std::size_t a = 0; a < mesh::kNumActivities; ++a)
    names.push_back(mesh::activity_name(mesh::activity_from_index(a)));
  std::printf("\nheld-out confusion matrix:\n%s\n",
              cm.to_string(names).c_str());

  const auto& sample = test.sample(0);
  const Tensor probs = model.predict_probabilities(sample.heatmaps);
  std::printf("\nsample 0 (true: %s) class probabilities:\n",
              names[sample.label].c_str());
  for (std::size_t c = 0; c < probs.size(); ++c)
    std::printf("  %-14s %5.1f%%\n", names[c].c_str(), 100.0F * probs[c]);

  std::printf("\nNext: ./build/examples/backdoor_attack_demo shows how a "
              "metal reflector subverts this model.\n");
  return 0;
}
