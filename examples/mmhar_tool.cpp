// mmhar_tool — command-line utility over the library's public API.
//
// Subcommands:
//   info                         radar/derived-parameter summary
//   simulate  [options]          one activity -> heatmap stats + ASCII
//   export    [options] PREFIX   posed body meshes as OBJ files
//   doppler   [options]          micro-Doppler centroid track
//   anchors                      body-anchor catalogue for a participant
//
// Common options:
//   --activity NAME   Push|Pull|LeftSwipe|RightSwipe|Clockwise|Anticlockwise
//   --distance M      subject distance (default 1.6)
//   --angle DEG       subject azimuth (default 0)
//   --participant N   0..2 body build (default 0)
//   --trigger ANCHOR  attach a 2x2in reflector (chest|abdomen|waist|...)
//   --frames N        frames per activity (default 32)
#include <cstdio>
#include <cstring>
#include <string>

#include "dsp/microdoppler.h"
#include "har/generator.h"
#include "mesh/obj_io.h"

using namespace mmhar;

namespace {

struct Options {
  mesh::Activity activity = mesh::Activity::Push;
  double distance = 1.6;
  double angle = 0.0;
  int participant = 0;
  std::string trigger_anchor;
  std::size_t frames = 32;
};

int usage() {
  std::fprintf(stderr,
               "usage: mmhar_tool <info|simulate|export|doppler|anchors> "
               "[--activity A] [--distance M] [--angle DEG]\n"
               "                  [--participant N] [--trigger ANCHOR] "
               "[--frames N] [prefix]\n");
  return 2;
}

bool parse_activity(const std::string& name, mesh::Activity& out) {
  for (std::size_t a = 0; a < mesh::kNumActivities; ++a) {
    if (name == mesh::activity_name(mesh::activity_from_index(a))) {
      out = mesh::activity_from_index(a);
      return true;
    }
  }
  return false;
}

bool parse_anchor(const std::string& name, mesh::BodyAnchor& out) {
  for (const auto a : mesh::all_anchors()) {
    if (name == mesh::anchor_name(a)) {
      out = a;
      return true;
    }
  }
  return false;
}

void print_heatmap(const Tensor& hm) {
  static const char* shades = " .:-=+*#%@";
  const float lo = hm.min();
  const float range = hm.max() - lo > 0 ? hm.max() - lo : 1.0F;
  for (std::size_t r = 0; r < hm.dim(0); ++r) {
    std::printf("  ");
    for (std::size_t c = 0; c < hm.dim(1); ++c)
      std::putchar(shades[std::min(
          9, static_cast<int>((hm.at(r, c) - lo) / range * 10.0F))]);
    std::putchar('\n');
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];

  Options opt;
  std::string positional;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--activity") {
      if (!parse_activity(next(), opt.activity)) {
        std::fprintf(stderr, "unknown activity\n");
        return 2;
      }
    } else if (arg == "--distance") {
      opt.distance = std::atof(next());
    } else if (arg == "--angle") {
      opt.angle = std::atof(next());
    } else if (arg == "--participant") {
      opt.participant = std::atoi(next());
    } else if (arg == "--trigger") {
      opt.trigger_anchor = next();
    } else if (arg == "--frames") {
      opt.frames = static_cast<std::size_t>(std::atoi(next()));
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return 2;
    } else {
      positional = arg;
    }
  }

  har::GeneratorConfig gc;
  gc.num_frames = opt.frames;
  const har::SampleGenerator generator(gc);

  har::SampleSpec spec;
  spec.activity = opt.activity;
  spec.distance_m = opt.distance;
  spec.angle_deg = opt.angle;
  spec.participant = opt.participant;

  const mesh::HumanBody body(
      mesh::BodyParams::participant(opt.participant));
  har::TriggerPlacement placement;
  const har::TriggerPlacement* trigger = nullptr;
  if (!opt.trigger_anchor.empty()) {
    mesh::BodyAnchor anchor;
    if (!parse_anchor(opt.trigger_anchor, anchor)) {
      std::fprintf(stderr, "unknown anchor %s (try: ",
                   opt.trigger_anchor.c_str());
      for (const auto a : mesh::all_anchors())
        std::fprintf(stderr, "%s ", mesh::anchor_name(a));
      std::fprintf(stderr, ")\n");
      return 2;
    }
    placement.local_position = body.anchor_position(anchor);
    placement.local_normal = body.anchor_normal(anchor);
    trigger = &placement;
  }

  if (command == "info") {
    const auto& rc = gc.radar;
    std::printf("FMCW: %.1f-%.1f GHz, slope %.1f MHz/us, %zu ADC samples, "
                "%zu chirps/frame, %zu virtual antennas\n",
                rc.start_freq_hz / 1e9,
                (rc.start_freq_hz + rc.bandwidth_hz) / 1e9,
                rc.slope_hz_per_s() / 1e12, rc.num_samples, rc.num_chirps,
                rc.num_virtual_antennas);
    std::printf("range resolution %.1f cm, window %.2f m, max "
                "unambiguous velocity %.2f m/s\n",
                100 * rc.range_resolution_m(),
                rc.max_range_m(gc.heatmap.range_bins),
                rc.max_unambiguous_velocity_mps());
    std::printf("heatmaps: %zu frames x %zu range x %zu angle bins, "
                "environment %s\n",
                gc.num_frames, gc.heatmap.range_bins, gc.heatmap.angle_bins,
                radar::environment_name(gc.environment));
    return 0;
  }

  if (command == "anchors") {
    std::printf("body anchors for participant %d (height %.2f m):\n",
                opt.participant, body.params().height);
    for (const auto a : mesh::all_anchors()) {
      const auto p = body.anchor_position(a);
      std::printf("  %-20s (%.3f, %.3f, %.3f)\n", mesh::anchor_name(a), p.x,
                  p.y, p.z);
    }
    return 0;
  }

  if (command == "simulate") {
    std::printf("simulating %s at %.1f m / %.0f deg%s...\n",
                mesh::activity_name(opt.activity), opt.distance, opt.angle,
                trigger ? " with trigger" : "");
    const Tensor hm = generator.generate(spec, trigger);
    std::printf("heatmaps %s, mean %.4f, max %.3f\n",
                hm.shape_string().c_str(), hm.mean(), hm.max());
    const std::size_t mid = hm.dim(0) / 2;
    Tensor frame({hm.dim(1), hm.dim(2)});
    std::copy(hm.data() + mid * frame.size(),
              hm.data() + (mid + 1) * frame.size(), frame.data());
    std::printf("frame %zu:\n", mid);
    print_heatmap(frame);
    return 0;
  }

  if (command == "export") {
    if (positional.empty()) {
      std::fprintf(stderr, "export needs an output prefix\n");
      return 2;
    }
    const auto meshes = generator.build_world_meshes(spec, trigger);
    mesh::save_obj_sequence(positional, meshes);
    std::printf("wrote %zu OBJ frames to %s_*.obj (%zu triangles each)\n",
                meshes.size(), positional.c_str(),
                meshes.front().num_triangles());
    return 0;
  }

  if (command == "doppler") {
    const auto cubes = generator.generate_cubes(spec, trigger);
    dsp::MicroDopplerConfig mc;
    const Tensor gram = dsp::micro_doppler_spectrogram(cubes, mc);
    const auto track = dsp::doppler_centroid_track(gram);
    std::printf("micro-Doppler centroid per frame (+ = approaching):\n");
    for (std::size_t f = 0; f < track.size(); ++f) {
      std::printf("  frame %2zu %+7.2f ", f, track[f]);
      const int bars = static_cast<int>(std::abs(track[f]) * 8.0);
      for (int b = 0; b < std::min(bars, 30); ++b) std::putchar('|');
      std::putchar('\n');
    }
    return 0;
  }

  return usage();
}
