// Scenario from the paper's introduction: evading a wireless surveillance
// system. A mmWave HAR system guards a room and raises an alarm on a
// specific "suspicious" gesture (we use Push as the stand-in). The
// attacker poisons the training data so that wearing a hidden reflector
// remaps the suspicious gesture to a benign one — the alarm stays silent
// for the attacker but keeps firing for everyone else.
//
// Also demonstrates the trigger-detection defense of §VII catching the
// attacker.
#include <cstdio>

#include "core/experiment.h"
#include "defense/trigger_detector.h"
#include "har/trainer.h"

using namespace mmhar;

int main() {
  std::printf("Surveillance evasion scenario\n");
  std::printf("=============================\n\n");

  auto setup = core::ExperimentSetup::standard();
  setup.repeats = 1;
  core::AttackExperiment experiment(setup);

  core::AttackPoint point;
  point.victim = static_cast<std::size_t>(mesh::Activity::Push);
  point.target = static_cast<std::size_t>(mesh::Activity::Pull);
  point.trigger.under_clothing = true;  // hidden under a jacket

  const std::size_t alarm_class = point.victim;
  std::printf("the surveillance system alarms on: %s\n",
              mesh::activity_name(mesh::activity_from_index(alarm_class)));
  std::printf("the attacker hides a 2x2-inch reflector under clothing and "
              "poisons %.0f%% of contributed %s samples\n\n",
              100.0 * point.injection_rate,
              mesh::activity_name(mesh::activity_from_index(alarm_class)));

  auto [model, metrics] = experiment.run_single(point, 0);

  // Innocent users: alarm fidelity on clean data.
  const auto cm = har::evaluate_confusion(model, experiment.test_set());
  const double alarm_recall = cm.per_class_recall()[alarm_class];
  std::printf("[innocent users] alarm fires on %s%% of real %s gestures\n",
              core::pct(alarm_recall).c_str(),
              mesh::activity_name(mesh::activity_from_index(alarm_class)));

  // The attacker performing the suspicious gesture with the trigger.
  const har::Dataset attack_test = experiment.attack_test_set(point);
  std::size_t alarms = 0;
  for (std::size_t i = 0; i < attack_test.size(); ++i)
    if (model.predict(attack_test.sample(i).heatmaps) == alarm_class)
      ++alarms;
  std::printf("[attacker]       alarm fires on %zu of %zu triggered "
              "gestures (evasion rate %s%%)\n\n",
              alarms, attack_test.size(),
              core::pct(1.0 - static_cast<double>(alarms) /
                                  attack_test.size()).c_str());

  // ---- The operator deploys the §VII trigger detector. ----
  std::printf("[defense] operator trains a trigger detector on simulated "
              "reflector signatures\n");
  har::SampleGenerator train_gen(setup.train_generator);
  const core::BackdoorPlan& plan = experiment.plan_for(point);
  const har::Dataset train_twins = core::load_or_build_triggered_twins(
      train_gen, setup.train_grid, point.victim, plan.placement,
      setup.cache_dir);

  defense::DetectorConfig dc;
  dc.height = setup.model.height;
  dc.width = setup.model.width;
  defense::TriggerDetector detector(dc);
  detector.train(experiment.train_set(), train_twins);

  std::size_t caught = 0;
  for (std::size_t i = 0; i < attack_test.size(); ++i)
    if (detector.is_triggered(attack_test.sample(i).heatmaps)) ++caught;
  std::size_t false_alarms = 0;
  const auto& clean = experiment.test_set();
  for (std::size_t i = 0; i < clean.size(); ++i)
    if (detector.is_triggered(clean.sample(i).heatmaps)) ++false_alarms;

  std::printf("  detector flags %zu of %zu attacker samples "
              "and %zu of %zu clean samples\n",
              caught, attack_test.size(), false_alarms, clean.size());
  std::printf("\nconclusion: the physical backdoor silences the alarm for "
              "the attacker while innocent users stay covered — and a "
              "heatmap-level trigger detector is a viable countermeasure.\n");
  return 0;
}
