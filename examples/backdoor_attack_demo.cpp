// End-to-end physical backdoor attack walkthrough (paper Fig. 2).
//
// Narrates all three phases against the standard experiment setup:
//   Phase 1 — attacker prepares poisoned samples: SHAP frame selection,
//             Eq. 2 anchor scoring, Eq. 4 global position.
//   Phase 2 — operator unknowingly trains on the poisoned dataset.
//   Phase 3 — the attacker wears the reflector; "Push" reads as "Pull".
//
// Uses the shared dataset/model cache (.mmhar_cache); the first run
// simulates the datasets (~minutes), subsequent runs start instantly.
#include <cstdio>

#include "core/experiment.h"
#include "har/trainer.h"

using namespace mmhar;

int main() {
  std::printf("Physical backdoor attack against mmWave HAR — demo\n");
  std::printf("==================================================\n\n");

  auto setup = core::ExperimentSetup::standard();
  setup.repeats = 1;
  core::AttackExperiment experiment(setup);

  core::AttackPoint point;  // Push -> Pull, rate 0.4, 8 frames, 2x2 in
  const char* victim = mesh::activity_name(
      mesh::activity_from_index(point.victim));
  const char* target = mesh::activity_name(
      mesh::activity_from_index(point.target));

  // ---- Phase 1: plan the attack on the surrogate. ----
  std::printf("[phase 1] attacker plans the poisoning (surrogate model)\n");
  const core::BackdoorPlan& plan = experiment.plan_for(point);

  std::printf("  SHAP top-%zu frames to poison:", plan.frames.size());
  for (const auto f : plan.frames) std::printf(" %zu", f);
  std::printf("\n  anchor ranking (Eq. 2 score = feature shift - beta * "
              "heatmap shift):\n");
  for (const auto& c : plan.anchor_ranking)
    std::printf("    %-20s score %7.3f (features %6.3f, heatmap %6.3f)\n",
                mesh::anchor_name(c.anchor), c.score, c.feature_distance,
                c.heatmap_deviation);
  std::printf("  global optimal position (Eq. 4, Weiszfeld): "
              "(%.3f, %.3f, %.3f) on the torso front\n\n",
              plan.placement.local_position.x,
              plan.placement.local_position.y,
              plan.placement.local_position.z);

  // ---- Phase 2: the operator trains on poisoned data. ----
  std::printf("[phase 2] operator trains the HAR model on a dataset with "
              "%.0f%% of %s samples poisoned\n",
              100.0 * point.injection_rate, victim);
  auto [backdoored, metrics] = experiment.run_single(point, 0);

  // ---- Phase 3: inference with the physical trigger. ----
  std::printf("\n[phase 3] attacker performs %s wearing a 2x2-inch "
              "aluminum reflector\n", victim);
  std::printf("  attack success rate (classified as %s): %s%%\n", target,
              core::pct(metrics.asr).c_str());
  std::printf("  untargeted success rate:                %s%%\n",
              core::pct(metrics.uasr).c_str());
  std::printf("  clean data rate (model still works):    %s%%\n",
              core::pct(metrics.cdr).c_str());

  // Show a couple of individual decisions.
  const har::Dataset attack_test = experiment.attack_test_set(point);
  std::printf("\n  individual triggered samples (true activity: %s):\n",
              victim);
  for (std::size_t i = 0; i < std::min<std::size_t>(5, attack_test.size());
       ++i) {
    const auto pred = backdoored.predict(attack_test.sample(i).heatmaps);
    std::printf("    sample %zu @ %.1fm/%+.0fdeg -> predicted %s\n", i,
                attack_test.sample(i).spec.distance_m,
                attack_test.sample(i).spec.angle_deg,
                mesh::activity_name(mesh::activity_from_index(pred)));
  }

  // Sanity: without the trigger the model behaves.
  std::printf("\n  without the trigger, the same model scores %s%% on the "
              "clean test set — the backdoor is invisible in normal use.\n",
              core::pct(har::evaluate_accuracy(
                  backdoored, experiment.test_set())).c_str());
  return 0;
}
