// Radar playground: the FMCW signal chain on synthetic point targets —
// no neural networks involved. Shows how range, angle, and velocity map
// onto RDI / DRAI heatmap coordinates, and what clutter removal does.
//
// Build & run:  cmake --build build && ./build/examples/radar_playground
#include <cmath>
#include <cstdio>

#include "dsp/heatmap.h"
#include "mesh/activity.h"
#include "radar/simulator.h"

using namespace mmhar;

namespace {

void print_heatmap(const Tensor& hm, const char* title) {
  static const char* shades = " .:-=+*#%@";
  std::printf("%s\n", title);
  const float lo = hm.min();
  const float range = hm.max() - lo > 0 ? hm.max() - lo : 1.0F;
  for (std::size_t r = 0; r < hm.dim(0); ++r) {
    std::printf("  ");
    for (std::size_t c = 0; c < hm.dim(1); ++c) {
      const int idx = std::min(
          9, static_cast<int>((hm.at(r, c) - lo) / range * 10.0F));
      std::putchar(shades[idx]);
    }
    std::putchar('\n');
  }
}

}  // namespace

int main() {
  std::printf("FMCW radar playground\n");
  std::printf("=====================\n\n");

  radar::FmcwConfig cfg;
  cfg.noise_std = 0.01;
  const radar::Simulator sim(cfg);
  std::printf("chirp: %.1f GHz bandwidth over %.1f us -> range resolution "
              "%.1f cm, %zu virtual antennas\n\n",
              cfg.bandwidth_hz / 1e9, cfg.chirp_time_s * 1e6,
              100.0 * cfg.range_resolution_m(), cfg.num_virtual_antennas);

  // Three point targets: near-left approaching, center static, far-right
  // receding.
  std::vector<radar::Scatterer> targets{
      {mesh::Vec3{0.9 * std::cos(-0.4), 0.9 * std::sin(-0.4), 0.0}, 1.0,
       -0.6},
      {mesh::Vec3{1.4, 0.0, 0.0}, 1.0, 0.0},
      {mesh::Vec3{2.0 * std::cos(0.35), 2.0 * std::sin(0.35), 0.0}, 1.5,
       0.8},
  };
  for (const auto& t : targets) {
    std::printf("target: range %.2f m, azimuth %.0f deg, v_r %+.1f m/s -> "
                "expected range bin %.1f, angle bin %.1f\n",
                mesh::range_of(t.position),
                mesh::rad2deg(mesh::azimuth_of(t.position)),
                t.radial_velocity,
                cfg.range_bin_of(mesh::range_of(t.position)),
                cfg.angle_bin_of(mesh::azimuth_of(t.position), 32));
  }

  Rng rng(1);
  const dsp::RadarCube cube = sim.synthesize(targets, &rng);

  // One Range-FFT pass, three views: DRAI, RDI, and the range profile are
  // all derived from the same RangeSpectra instead of re-running the FFT
  // chain per heatmap.
  dsp::HeatmapConfig hm;
  hm.remove_clutter = false;
  dsp::RangeSpectra spectra = dsp::range_fft(cube, hm);

  const Tensor profile = dsp::range_profile(spectra);
  std::printf("\nrange profile (one bar per range bin):\n  ");
  const float pmax = profile.max() > 0 ? profile.max() : 1.0F;
  for (std::size_t r = 0; r < profile.size(); ++r) {
    static const char* shades = " .:-=+*#%@";
    const int idx =
        std::min(9, static_cast<int>(profile[r] / pmax * 10.0F));
    std::putchar(shades[idx]);
  }
  std::putchar('\n');

  print_heatmap(dsp::compute_drai(spectra, hm),
                "\nDRAI (range down, angle across), clutter kept:");
  print_heatmap(dsp::compute_rdi(spectra, hm),
                "\nRDI (Doppler down: top=approaching, bottom=receding):");

  // Clutter removal happens on the spectra, so the MTI view reuses the
  // same Range-FFT output too.
  dsp::remove_static_clutter(spectra);
  print_heatmap(dsp::compute_drai(spectra, hm),
                "\nDRAI after MTI clutter removal (static center target "
                "vanishes):");

  std::printf("\nNow with a person: simulate a Push gesture "
              "and watch the moving hand sweep through range bins.\n");
  // A human mesh instead of point targets.
  const mesh::HumanBody body(mesh::BodyParams::participant(0));
  const mesh::ActivityAnimator animator(body);
  Rng motion(7);
  const auto poses = animator.animate(mesh::Activity::Push, 8, motion);
  std::vector<mesh::TriMesh> frames;
  for (const auto& pose : poses) {
    mesh::TriMesh m = body.build(pose);
    mesh::place_in_world(m, 1.5, 0.0);
    m.translate({0.0, 0.0, -1.1});  // radar mounted at 1.1 m
    frames.push_back(std::move(m));
  }
  const auto cubes = sim.simulate_sequence(frames, nullptr, 0.03, &rng);
  hm.remove_clutter = true;
  print_heatmap(dsp::compute_drai(cubes[2], hm),
                "\nhuman Push, frame 2 (arm extending):");
  print_heatmap(dsp::compute_drai(cubes[5], hm),
                "human Push, frame 5 (arm extended):");
  return 0;
}
